// Package syncer implements the Synchronizer of Alg. 1, which merges the
// output streams of all K-slack components into a single, mostly
// timestamp-ordered stream for the join operator.
//
// A tuple e with e.ts > T^sync enters the synchronization buffer; whenever
// the buffer holds at least one tuple from every (still open) stream, the
// minimum-timestamp tuples are released and T^sync advances. A tuple with
// e.ts ≤ T^sync is forwarded immediately (lines 9–10), which is why the join
// operator can still observe out-of-order input.
//
// Finite experiment streams additionally need end-of-stream handling: once a
// stream is closed it no longer gates the release loop, otherwise the last
// window of every other stream would be withheld forever.
package syncer

import (
	"sort"

	"repro/internal/fault"
	"repro/internal/pq"
	"repro/internal/stream"
)

// EmitFunc receives synchronized tuples in release order.
type EmitFunc func(*stream.Tuple)

// Synchronizer merges m streams per Alg. 1.
type Synchronizer struct {
	m      int
	tsync  stream.Time
	heap   pq.Heap[*stream.Tuple]
	counts []int // buffered tuples per stream
	open   []bool
	nOpen  int
	emit   EmitFunc

	immediate int64 // tuples forwarded via lines 9–10
	buffered  int64
}

// New creates a Synchronizer over m input streams.
func New(m int, emit EmitFunc) *Synchronizer {
	s := &Synchronizer{
		m:      m,
		heap:   pq.New(stream.Less),
		counts: make([]int, m),
		open:   make([]bool, m),
		nOpen:  m,
		emit:   emit,
	}
	for i := range s.open {
		s.open[i] = true
	}
	return s
}

// TSync returns the current maximum timestamp among released tuples.
func (s *Synchronizer) TSync() stream.Time { return s.tsync }

// Len returns the number of buffered tuples.
func (s *Synchronizer) Len() int { return s.heap.Len() }

// Immediate returns how many tuples bypassed the buffer (out-of-order w.r.t.
// T^sync, forwarded immediately).
func (s *Synchronizer) Immediate() int64 { return s.immediate }

// Push accepts one tuple from the K-slack component of stream e.Src.
func (s *Synchronizer) Push(e *stream.Tuple) {
	if e.TS > s.tsync {
		s.heap.Push(e)
		s.counts[e.Src]++
		s.buffered++
		s.drain()
		return
	}
	s.immediate++
	s.emit(e)
}

// Close marks stream i as ended. Closed streams no longer gate the release
// loop; closing the last stream flushes the buffer completely.
func (s *Synchronizer) Close(i int) {
	if i < 0 || i >= s.m || !s.open[i] {
		return
	}
	s.open[i] = false
	s.nOpen--
	s.drain()
}

// drain releases tuples while every open stream has at least one buffered
// tuple: T^sync advances to the minimum buffered timestamp and all tuples at
// that timestamp are emitted. With no open streams the buffer empties fully.
func (s *Synchronizer) drain() {
	for s.heap.Len() > 0 && s.ready() {
		s.tsync = s.heap.Peek().TS
		for s.heap.Len() > 0 && s.heap.Peek().TS == s.tsync {
			e := s.heap.Pop()
			s.counts[e.Src]--
			s.emit(e)
		}
	}
}

// State is the serializable snapshot of a Synchronizer.
type State struct {
	TSync     stream.Time
	Open      []bool
	Immediate int64
	Buffered  []int32 // tuple-table ids, canonical (TS, Seq) order
}

// State captures the synchronizer's state, registering buffered tuples in tt.
func (s *Synchronizer) State(tt *fault.TupleTable) State {
	items := s.heap.Items()
	sorted := make([]*stream.Tuple, len(items))
	copy(sorted, items)
	sort.Slice(sorted, func(i, j int) bool { return stream.Less(sorted[i], sorted[j]) })
	st := State{
		TSync:     s.tsync,
		Open:      append([]bool(nil), s.open...),
		Immediate: s.immediate,
		Buffered:  make([]int32, len(sorted)),
	}
	for i, e := range sorted {
		st.Buffered[i] = tt.ID(e)
	}
	return st
}

// Restore loads a captured state into a freshly constructed synchronizer
// (same m and emit sink). Per-stream counts are rebuilt from the buffered
// tuples' Src fields.
func (s *Synchronizer) Restore(st State, ta *fault.TupleArena) {
	s.tsync = st.TSync
	s.immediate = st.Immediate
	s.nOpen = 0
	for i := range s.open {
		s.open[i] = st.Open[i]
		if s.open[i] {
			s.nOpen++
		}
		s.counts[i] = 0
	}
	s.heap.Reset()
	s.buffered = 0
	for _, id := range st.Buffered {
		e := ta.Tuple(id)
		s.heap.Push(e)
		s.counts[e.Src]++
		s.buffered++
	}
}

// ready reports whether every open stream has a buffered tuple.
func (s *Synchronizer) ready() bool {
	if s.nOpen == 0 {
		return true
	}
	for i, c := range s.counts {
		if s.open[i] && c == 0 {
			return false
		}
	}
	return true
}
