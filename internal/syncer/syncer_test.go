package syncer

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/stream"
)

func tup(src int, ts stream.Time, seq uint64) *stream.Tuple {
	return &stream.Tuple{TS: ts, Seq: seq, Src: src}
}

func TestHoldsUntilEveryStreamPresent(t *testing.T) {
	var out []*stream.Tuple
	s := New(2, func(e *stream.Tuple) { out = append(out, e) })
	s.Push(tup(0, 5, 0))
	s.Push(tup(0, 6, 1))
	if len(out) != 0 {
		t.Fatal("must hold until every stream has a buffered tuple")
	}
	s.Push(tup(1, 7, 2))
	// Buffer now has S0:{5,6}, S1:{7}. Release loop: Tsync=5 emit 5;
	// then S1 still has 7, S0 has 6 → Tsync=6 emit 6; then S0 empty → stop.
	if len(out) != 2 || out[0].TS != 5 || out[1].TS != 6 {
		t.Fatalf("out = %v", out)
	}
	if s.TSync() != 6 {
		t.Fatalf("TSync = %d, want 6", s.TSync())
	}
}

func TestImmediateForwardOfLateTuple(t *testing.T) {
	var out []*stream.Tuple
	s := New(2, func(e *stream.Tuple) { out = append(out, e) })
	s.Push(tup(0, 5, 0))
	s.Push(tup(1, 9, 1)) // releases ts 5, Tsync=5
	out = out[:0]
	late := tup(0, 3, 2) // ts ≤ Tsync → bypass
	s.Push(late)
	if len(out) != 1 || out[0] != late {
		t.Fatal("late tuple must be forwarded immediately")
	}
	if s.Immediate() != 1 {
		t.Fatalf("Immediate = %d", s.Immediate())
	}
}

func TestEqualTimestampsReleaseTogether(t *testing.T) {
	var out []*stream.Tuple
	s := New(2, func(e *stream.Tuple) { out = append(out, e) })
	s.Push(tup(0, 5, 0))
	s.Push(tup(1, 5, 1))
	if len(out) != 2 {
		t.Fatalf("both ts-5 tuples must release, got %d", len(out))
	}
}

func TestCloseUnblocksRemainingStreams(t *testing.T) {
	var out []*stream.Tuple
	s := New(3, func(e *stream.Tuple) { out = append(out, e) })
	s.Push(tup(0, 1, 0))
	s.Push(tup(1, 2, 1))
	if len(out) != 0 {
		t.Fatal("stream 2 never produced; must hold")
	}
	s.Close(2)
	// With stream 2 gone, streams 0 and 1 both hold a tuple, so the minimum
	// (ts 1) releases; ts 2 then waits for more stream-0 input.
	if len(out) != 1 || out[0].TS != 1 {
		t.Fatalf("closing the silent stream must release ts 1, got %v", out)
	}
	s.Close(0)
	if len(out) != 2 {
		t.Fatalf("closing stream 0 must release ts 2, got %d", len(out))
	}
	s.Close(1)
	if s.Len() != 0 {
		t.Fatal("closing all streams must drain the buffer")
	}
}

func TestCloseIdempotent(t *testing.T) {
	s := New(2, func(*stream.Tuple) {})
	s.Close(0)
	s.Close(0) // second close must not underflow nOpen
	s.Close(1)
	s.Close(-1) // out of range ignored
	s.Close(5)
}

// TestLeadingStreamImplicitBuffer verifies the K^sync observation behind the
// Same-K policy (Sec. III-B): with K=0 the Synchronizer itself buffers the
// leading stream up to the skew against the slowest stream.
func TestLeadingStreamImplicitBuffer(t *testing.T) {
	var out []*stream.Tuple
	s := New(2, func(e *stream.Tuple) { out = append(out, e) })
	// S0 leads by a large skew.
	for i := 0; i < 5; i++ {
		s.Push(tup(0, stream.Time(100+i), uint64(i)))
	}
	if s.Len() != 5 {
		t.Fatal("leading tuples must sit in the synchronization buffer")
	}
	s.Push(tup(1, 50, 10))
	// min ts = 50 releases only the lagging tuple.
	if len(out) != 1 || out[0].TS != 50 {
		t.Fatalf("out = %v", out)
	}
}

// Property: with per-stream sorted inputs that are eventually closed, the
// synchronizer output is globally sorted and conserves tuples.
func TestSortedInputsMergeSorted(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := 2 + rng.Intn(3)
		var out []*stream.Tuple
		s := New(m, func(e *stream.Tuple) { out = append(out, e) })
		var seq uint64
		cur := make([]stream.Time, m)
		total := 0
		for i := 0; i < 200; i++ {
			src := rng.Intn(m)
			cur[src] += stream.Time(rng.Intn(5))
			s.Push(tup(src, cur[src], seq))
			seq++
			total++
		}
		for i := 0; i < m; i++ {
			s.Close(i)
		}
		if len(out) != total {
			return false
		}
		for i := 1; i < len(out); i++ {
			if out[i].TS < out[i-1].TS {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: conservation also holds for disordered inputs (late tuples take
// the bypass path but are never dropped).
func TestConservationDisordered(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := 2
		count := 0
		s := New(m, func(*stream.Tuple) { count++ })
		ts := make([]stream.Time, m)
		n := 300
		for i := 0; i < n; i++ {
			src := rng.Intn(m)
			ts[src] += stream.Time(rng.Intn(4))
			d := stream.Time(rng.Intn(25))
			v := ts[src] - d
			if v < 0 {
				v = 0
			}
			s.Push(tup(src, v, uint64(i)))
		}
		for i := 0; i < m; i++ {
			s.Close(i)
		}
		return count == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
