// Package pq provides a generic, non-boxing min-heap shared by the
// per-tuple hot paths of the framework: the K-slack input-sorting buffers,
// the Synchronizer and the distributed tree stages.
//
// container/heap funnels every element through `any`, which boxes the value
// and allocates on each Push; with millions of tuples per second that is an
// allocation (and a GC pointer write) per arrival. Heap[T] stores elements
// directly in a typed slice, so steady-state Push/Pop never allocate once
// the backing array has reached its high-water mark.
//
// The heap is 4-ary rather than binary: half the depth means half the
// swap-and-compare levels per Push on mostly-ordered input (the common case
// after K-slack), and sift-down compares four children that sit in one or
// two cache lines.
package pq

// Heap is a d-ary (d=4) min-heap ordered by the less function. The zero
// value is not usable; construct with New. Heap is not safe for concurrent
// use.
type Heap[T any] struct {
	less  func(a, b T) bool
	items []T
}

// New returns an empty heap ordered by less.
func New[T any](less func(a, b T) bool) Heap[T] {
	return Heap[T]{less: less}
}

// Len returns the number of elements held.
func (h *Heap[T]) Len() int { return len(h.items) }

// Peek returns the minimum element without removing it. It panics on an
// empty heap, like indexing an empty slice would.
func (h *Heap[T]) Peek() T { return h.items[0] }

// Items exposes the backing slice in heap order (not sorted). Callers may
// scan it read-only; they must not reorder or resize it.
func (h *Heap[T]) Items() []T { return h.items }

// Push inserts x. Amortized O(log4 n), allocation-free once the backing
// array is warm.
func (h *Heap[T]) Push(x T) {
	h.items = append(h.items, x)
	h.up(len(h.items) - 1)
}

// Pop removes and returns the minimum element. The vacated slot is zeroed so
// popped pointers do not pin their referents.
func (h *Heap[T]) Pop() T {
	n := len(h.items) - 1
	top := h.items[0]
	h.items[0] = h.items[n]
	var zero T
	h.items[n] = zero
	h.items = h.items[:n]
	if n > 1 {
		h.down(0)
	}
	return top
}

// Reset empties the heap keeping the backing array, zeroing it so stale
// pointers are released.
func (h *Heap[T]) Reset() {
	clear(h.items)
	h.items = h.items[:0]
}

// RemoveAt removes and returns the element at position i of the backing
// slice (an index into Items()), restoring the heap invariant. O(log4 n).
func (h *Heap[T]) RemoveAt(i int) T {
	n := len(h.items) - 1
	out := h.items[i]
	h.items[i] = h.items[n]
	var zero T
	h.items[n] = zero
	h.items = h.items[:n]
	if i < n {
		h.down(i)
		h.up(i)
	}
	return out
}

func (h *Heap[T]) up(i int) {
	for i > 0 {
		p := (i - 1) >> 2
		if !h.less(h.items[i], h.items[p]) {
			return
		}
		h.items[i], h.items[p] = h.items[p], h.items[i]
		i = p
	}
}

func (h *Heap[T]) down(i int) {
	n := len(h.items)
	for {
		c := i<<2 + 1
		if c >= n {
			return
		}
		min := c
		end := c + 4
		if end > n {
			end = n
		}
		for j := c + 1; j < end; j++ {
			if h.less(h.items[j], h.items[min]) {
				min = j
			}
		}
		if !h.less(h.items[min], h.items[i]) {
			return
		}
		h.items[i], h.items[min] = h.items[min], h.items[i]
		i = min
	}
}
