package pq

import (
	"container/heap"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func intLess(a, b int) bool { return a < b }

func TestPushPopSorted(t *testing.T) {
	h := New(intLess)
	in := []int{5, 3, 8, 1, 9, 2, 7, 4, 6, 0}
	for _, v := range in {
		h.Push(v)
	}
	if h.Len() != len(in) {
		t.Fatalf("Len = %d, want %d", h.Len(), len(in))
	}
	if h.Peek() != 0 {
		t.Fatalf("Peek = %d, want 0", h.Peek())
	}
	for want := 0; want < len(in); want++ {
		if got := h.Pop(); got != want {
			t.Fatalf("Pop = %d, want %d", got, want)
		}
	}
	if h.Len() != 0 {
		t.Fatal("heap not empty after draining")
	}
}

func TestDuplicatesAndInterleaving(t *testing.T) {
	h := New(intLess)
	h.Push(3)
	h.Push(3)
	h.Push(1)
	if h.Pop() != 1 || h.Pop() != 3 {
		t.Fatal("wrong order with duplicates")
	}
	h.Push(0)
	if h.Pop() != 0 || h.Pop() != 3 {
		t.Fatal("wrong order after interleaved push")
	}
}

func TestReset(t *testing.T) {
	h := New(intLess)
	for i := 0; i < 10; i++ {
		h.Push(i)
	}
	h.Reset()
	if h.Len() != 0 {
		t.Fatal("Reset must empty the heap")
	}
	h.Push(42)
	if h.Pop() != 42 {
		t.Fatal("heap unusable after Reset")
	}
}

// Property: popping everything yields the sorted input, for arbitrary inputs.
func TestHeapSortProperty(t *testing.T) {
	f := func(raw []int) bool {
		h := New(intLess)
		for _, v := range raw {
			h.Push(v)
		}
		want := append([]int(nil), raw...)
		sort.Ints(want)
		for _, w := range want {
			if h.Pop() != w {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: under random interleavings of push and pop the heap agrees with
// container/heap.
func TestMatchesContainerHeap(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		h := New(intLess)
		var ref refHeap
		for i := 0; i < 500; i++ {
			if h.Len() > 0 && rng.Intn(3) == 0 {
				if h.Pop() != heap.Pop(&ref).(int) {
					return false
				}
				continue
			}
			v := rng.Intn(100)
			h.Push(v)
			heap.Push(&ref, v)
		}
		for h.Len() > 0 {
			if ref.Len() == 0 || h.Pop() != heap.Pop(&ref).(int) {
				return false
			}
		}
		return ref.Len() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestSteadyStatePushPopDoesNotAllocate(t *testing.T) {
	h := New(intLess)
	for i := 0; i < 1024; i++ {
		h.Push(i)
	}
	for h.Len() > 0 {
		h.Pop()
	}
	allocs := testing.AllocsPerRun(100, func() {
		for i := 0; i < 64; i++ {
			h.Push(64 - i)
		}
		for h.Len() > 0 {
			h.Pop()
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state push/pop allocated %v times per run", allocs)
	}
}

// refHeap is the container/heap oracle.
type refHeap []int

func (h refHeap) Len() int           { return len(h) }
func (h refHeap) Less(i, j int) bool { return h[i] < h[j] }
func (h refHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *refHeap) Push(x any)        { *h = append(*h, x.(int)) }
func (h *refHeap) Pop() any          { old := *h; n := len(old); v := old[n-1]; *h = old[:n-1]; return v }

func BenchmarkPushPop(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	vals := make([]int, 4096)
	for i := range vals {
		vals[i] = rng.Int()
	}
	b.Run("pq4ary", func(b *testing.B) {
		h := New(intLess)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			h.Push(vals[i%len(vals)])
			if h.Len() > 256 {
				h.Pop()
			}
		}
	})
	b.Run("container-heap", func(b *testing.B) {
		var h refHeap
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			heap.Push(&h, vals[i%len(vals)])
			if h.Len() > 256 {
				heap.Pop(&h)
			}
		}
	})
}
