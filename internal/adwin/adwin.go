// Package adwin implements the ADWIN adaptive windowing algorithm of Bifet
// and Gavaldà (SIAM SDM 2007), which the paper (Sec. IV-A, citing [25]) uses
// to size the per-stream delay-statistics history R^stat: the window grows
// while the delay distribution is stable and shrinks automatically when a
// change in the disorder pattern is detected.
//
// The implementation keeps the stream summary in an exponential histogram of
// buckets, so memory is O(M·log(W/M)) for window length W, and checks the
// ADWIN cut condition at every bucket boundary.
package adwin

import "math"

// maxBucketsPerRow bounds how many buckets of equal capacity are kept before
// two are merged into the next row; the original paper uses M = 5.
const maxBucketsPerRow = 5

// bucket aggregates 2^row consecutive elements.
type bucket struct {
	sum   float64
	sumSq float64
	size  float64
}

// row is one capacity class of the exponential histogram: a fixed-size ring
// of at most maxBucketsPerRow+1 buckets (the +1 absorbs the transient
// overflow before a merge). A ring rather than a slice keeps insertion
// allocation-free: the old slice layout advanced its start on every merge,
// bleeding capacity and reallocating about once per element.
type row struct {
	buf  [maxBucketsPerRow + 1]bucket
	head int
	n    int
}

// push appends a bucket at the newest end.
func (r *row) push(b bucket) {
	r.buf[(r.head+r.n)%len(r.buf)] = b
	r.n++
}

// pop removes and returns the oldest bucket.
func (r *row) pop() bucket {
	b := r.buf[r.head]
	r.head = (r.head + 1) % len(r.buf)
	r.n--
	return b
}

// at returns the i-th oldest bucket.
func (r *row) at(i int) bucket {
	return r.buf[(r.head+i)%len(r.buf)]
}

// Window is an ADWIN sliding window over a real-valued stream.
// The zero value is not ready for use; call New.
type Window struct {
	delta     float64
	rows      []row // rows[i] holds buckets of capacity 2^i
	total     float64
	sum       float64
	sumSq     float64
	minLength int
	sinceCut  int
	checkEach int
}

// New creates an ADWIN window with confidence parameter delta ∈ (0,1);
// smaller delta makes shrinking more conservative. The canonical choice
// delta = 0.002 is a good default for delay monitoring.
func New(delta float64) *Window {
	if delta <= 0 || delta >= 1 {
		delta = 0.002
	}
	return &Window{
		delta:     delta,
		minLength: 16,
		checkEach: 8,
	}
}

// Add appends one element to the window head and returns true if the window
// detected a distribution change and dropped its stale tail.
func (w *Window) Add(x float64) bool {
	w.insert(x)
	w.sinceCut++
	if w.sinceCut < w.checkEach || w.total < float64(w.minLength) {
		return false
	}
	w.sinceCut = 0
	return w.shrink()
}

// Len returns the current window length in elements.
func (w *Window) Len() int { return int(w.total) }

// Mean returns the mean of the elements currently in the window.
func (w *Window) Mean() float64 {
	if w.total == 0 {
		return 0
	}
	return w.sum / w.total
}

// insert adds a capacity-1 bucket and compresses rows that overflow.
func (w *Window) insert(x float64) {
	if len(w.rows) == 0 {
		w.rows = append(w.rows, row{})
	}
	w.rows[0].push(bucket{sum: x, sumSq: x * x, size: 1})
	w.total++
	w.sum += x
	w.sumSq += x * x
	for i := 0; i < len(w.rows); i++ {
		if w.rows[i].n <= maxBucketsPerRow {
			break
		}
		// Merge the two oldest buckets of this row into one bucket of the
		// next row.
		b0 := w.rows[i].pop()
		b1 := w.rows[i].pop()
		if i+1 == len(w.rows) {
			w.rows = append(w.rows, row{})
		}
		w.rows[i+1].push(bucket{
			sum:   b0.sum + b1.sum,
			sumSq: b0.sumSq + b1.sumSq,
			size:  b0.size + b1.size,
		})
	}
}

// shrink evaluates the ADWIN cut condition at every bucket boundary, oldest
// first, dropping tail buckets while any split shows a significant difference
// in means. Returns true if anything was dropped.
func (w *Window) shrink() bool {
	dropped := false
	for {
		if !w.dropOnce() {
			return dropped
		}
		dropped = true
	}
}

// dropOnce scans the histogram once and drops the single oldest bucket if
// some split point violates the cut condition.
func (w *Window) dropOnce() bool {
	if w.total < float64(w.minLength) {
		return false
	}
	// The significance threshold's variance and confidence terms depend only
	// on whole-window state, so hoist them out of the boundary scan.
	v := w.variance()
	dd := math.Log(2 * math.Log(math.Max(w.total, math.E)) / w.delta)
	// Walk from the oldest bucket towards the newest, maintaining the tail
	// aggregate (n0, s0); head aggregate is the complement.
	n0, s0 := 0.0, 0.0
	cut := false
	// Oldest buckets live in the highest row, at the front of that row.
	for i := len(w.rows) - 1; i >= 0 && !cut; i-- {
		for j := 0; j < w.rows[i].n; j++ {
			b := w.rows[i].at(j)
			n0 += b.size
			s0 += b.sum
			n1 := w.total - n0
			if n0 < 1 || n1 < 1 {
				continue
			}
			if w.cutViolated(n0, s0, n1, w.sum-s0, v, dd) {
				cut = true
				break
			}
		}
	}
	if !cut {
		return false
	}
	w.dropOldestBucket()
	return true
}

// cutViolated implements the variance-based (Bernstein) ADWIN significance
// test, which — unlike the plain Hoeffding form — works for values of
// arbitrary scale such as millisecond delays: with harmonic sample size m,
// window variance v and confidence δ′ = δ / ln(n),
//
//	ε = sqrt((2/m)·v·ln(2/δ′)) + (2/(3m))·ln(2/δ′).
//
// v and dd are the whole-window variance and ln(2/δ′) term, precomputed by
// the caller once per scan.
func (w *Window) cutViolated(n0, s0, n1, s1, v, dd float64) bool {
	mean0 := s0 / n0
	mean1 := s1 / n1
	m := 1 / (1/n0 + 1/n1)
	eps := math.Sqrt(2/m*v*dd) + 2/(3*m)*dd
	return math.Abs(mean0-mean1) > eps
}

// variance returns the empirical variance of the whole window.
func (w *Window) variance() float64 {
	if w.total < 2 {
		return 0
	}
	mean := w.sum / w.total
	v := w.sumSq/w.total - mean*mean
	if v < 0 {
		return 0
	}
	return v
}

// BucketState is the serialized form of one exponential-histogram bucket.
type BucketState struct {
	Sum, SumSq, Size float64
}

// State is the serializable snapshot of a Window: per-row bucket lists,
// oldest first, plus the aggregates and the cut-check phase.
type State struct {
	Rows     [][]BucketState
	Total    float64
	Sum      float64
	SumSq    float64
	SinceCut int
}

// State captures the window's state.
func (w *Window) State() State {
	st := State{Total: w.total, Sum: w.sum, SumSq: w.sumSq, SinceCut: w.sinceCut,
		Rows: make([][]BucketState, len(w.rows))}
	for i := range w.rows {
		r := &w.rows[i]
		st.Rows[i] = make([]BucketState, r.n)
		for j := 0; j < r.n; j++ {
			b := r.at(j)
			st.Rows[i][j] = BucketState{Sum: b.sum, SumSq: b.sumSq, Size: b.size}
		}
	}
	return st
}

// Restore loads a captured state into a freshly constructed window (same
// delta).
func (w *Window) Restore(st State) {
	w.total = st.Total
	w.sum = st.Sum
	w.sumSq = st.SumSq
	w.sinceCut = st.SinceCut
	w.rows = make([]row, len(st.Rows))
	for i, bs := range st.Rows {
		for _, b := range bs {
			w.rows[i].push(bucket{sum: b.Sum, sumSq: b.SumSq, size: b.Size})
		}
	}
}

// dropOldestBucket removes the single oldest bucket from the histogram.
func (w *Window) dropOldestBucket() {
	for i := len(w.rows) - 1; i >= 0; i-- {
		r := &w.rows[i]
		if r.n == 0 {
			continue
		}
		b := r.pop()
		w.total -= b.size
		w.sum -= b.sum
		w.sumSq -= b.sumSq
		// Trim empty high rows so future scans stay short.
		for len(w.rows) > 1 && w.rows[len(w.rows)-1].n == 0 {
			w.rows = w.rows[:len(w.rows)-1]
		}
		return
	}
}
