package adwin

import (
	"math"
	"math/rand"
	"testing"
)

func TestGrowsOnStableStream(t *testing.T) {
	w := New(0.002)
	for i := 0; i < 5000; i++ {
		w.Add(1.0)
	}
	if w.Len() != 5000 {
		t.Fatalf("stable stream should never shrink, len = %d", w.Len())
	}
	if math.Abs(w.Mean()-1) > 1e-9 {
		t.Fatalf("mean = %v", w.Mean())
	}
}

func TestShrinksOnAbruptChange(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	w := New(0.01)
	for i := 0; i < 3000; i++ {
		w.Add(rng.Float64() * 0.1)
	}
	before := w.Len()
	for i := 0; i < 1000; i++ {
		w.Add(10 + rng.Float64())
	}
	if w.Len() >= before+1000 {
		t.Fatalf("window did not shrink after change: len = %d (pre-change %d)", w.Len(), before)
	}
	// The window should now mostly contain post-change data.
	if w.Mean() < 5 {
		t.Fatalf("mean %v still dominated by stale data", w.Mean())
	}
}

func TestTracksMeanAfterDrift(t *testing.T) {
	w := New(0.01)
	for i := 0; i < 2000; i++ {
		w.Add(0)
	}
	for i := 0; i < 2000; i++ {
		w.Add(1)
	}
	if w.Mean() < 0.8 {
		t.Fatalf("mean %v did not converge to post-change value", w.Mean())
	}
}

func TestNoisyStationaryKeepsLongWindow(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	w := New(0.002)
	for i := 0; i < 10000; i++ {
		w.Add(rng.NormFloat64())
	}
	if w.Len() < 2000 {
		t.Fatalf("stationary noise should keep a long window, len = %d", w.Len())
	}
}

func TestEmptyWindow(t *testing.T) {
	w := New(0.002)
	if w.Len() != 0 || w.Mean() != 0 {
		t.Fatal("fresh window must be empty with mean 0")
	}
}

func TestInvalidDeltaDefaults(t *testing.T) {
	for _, d := range []float64{0, -1, 1, 2} {
		w := New(d)
		if w.delta != 0.002 {
			t.Fatalf("delta %v should default to 0.002", d)
		}
	}
}

func TestMeanMatchesContents(t *testing.T) {
	// The window's (sum,total) bookkeeping must stay exact through merges
	// and drops.
	rng := rand.New(rand.NewSource(3))
	w := New(0.05)
	var mirror []float64
	for i := 0; i < 4000; i++ {
		v := rng.Float64()
		if i > 2000 {
			v += 3 // drift to force drops
		}
		w.Add(v)
		mirror = append(mirror, v)
		if len(mirror) > w.Len() {
			mirror = mirror[len(mirror)-w.Len():]
		}
	}
	sum := 0.0
	for _, v := range mirror {
		sum += v
	}
	want := sum / float64(len(mirror))
	if math.Abs(w.Mean()-want) > 1e-6 {
		t.Fatalf("mean = %v, mirror mean = %v", w.Mean(), want)
	}
}
