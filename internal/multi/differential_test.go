package multi_test

// Differential tests at the multi-query seam: every query registered with
// the shared-window engine must produce, bit-for-bit, the ordered result
// stream AND the K trajectory of a standalone core.Pipeline running the
// same query over the same arrivals — for every policy, on equi, band and
// generic condition mixes, across runtime add/remove, at every tested query
// count. CI runs these under -race.

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/adapt"
	"repro/internal/core"
	"repro/internal/join"
	"repro/internal/leakcheck"
	"repro/internal/multi"
	"repro/internal/plan"
	"repro/internal/stream"
)

// mixWorkload builds an m-stream feed with bounded disorder and two
// attributes per tuple (an integer-ish key and a continuous value).
func mixWorkload(m, rounds int, seed int64, domain int) stream.Batch {
	rng := rand.New(rand.NewSource(seed))
	var out stream.Batch
	var seq uint64
	ts := stream.Time(3000)
	for i := 0; i < rounds; i++ {
		ts += 10
		for src := 0; src < m; src++ {
			t := ts
			if rng.Intn(4) == 0 {
				t -= stream.Time(rng.Intn(1500))
			}
			out = append(out, &stream.Tuple{TS: t, Seq: seq, Src: src,
				Attrs: []float64{float64(rng.Intn(domain)), float64(rng.Intn(200))}})
			seq++
		}
	}
	return out
}

func resultSig(r stream.Result) string {
	var b strings.Builder
	for _, t := range r.Tuples {
		if t != nil {
			fmt.Fprintf(&b, "%d:%d,", t.Src, t.Seq)
		}
	}
	return b.String()
}

// tightAdapt is an adaptation config with short intervals, so a few-second
// workload crosses many boundaries and the K trajectories have substance.
func tightAdapt() adapt.Config {
	return adapt.Config{Gamma: 0.9, P: 2000, L: 250, B: 50, G: 50}
}

// qspec is one query under test.
type qspec struct {
	name    string
	cond    func() *join.Condition
	windows []stream.Time
	policy  plan.Policy
	staticK stream.Time
	adapt   adapt.Config
	emit    bool // materialize results (disables the counting fast path)
}

// capture is everything a run exposes about one query.
type capture struct {
	results []string // ordered result signatures (emit runs)
	counts  []string // ordered "ts:n" per-arrival count records
	adapts  []core.AdaptEvent
	total   int64
	avgK    float64
	nAdapt  int64
}

// runStandalone executes one query on a classic pipeline over in (pushing
// all tuples; finishing only when finish is set) and captures its outputs.
func runStandalone(t *testing.T, s qspec, in stream.Batch, finish bool) capture {
	t.Helper()
	var cap capture
	pf, initialK := plan.PolicyFactoryFor(s.policy, s.staticK)
	cfg := core.Config{
		Windows:    s.windows,
		Cond:       s.cond(),
		Adapt:      s.adapt,
		Policy:     pf,
		InitialK:   initialK,
		EmitCounts: func(ts stream.Time, n int64) { cap.counts = append(cap.counts, fmt.Sprintf("%d:%d", ts, n)) },
		OnAdapt:    func(ev core.AdaptEvent) { cap.adapts = append(cap.adapts, ev) },
	}
	if s.emit {
		cfg.Emit = func(r stream.Result) { cap.results = append(cap.results, resultSig(r)) }
	}
	p := core.New(cfg)
	for _, e := range in {
		p.Push(e)
	}
	if finish {
		p.Finish()
	}
	cap.total = p.Results()
	cap.avgK = p.AvgK()
	cap.nAdapt = p.Adaptations()
	return cap
}

// addQuery registers s with the engine and returns the query handle plus
// its live capture (filled in as the engine runs).
func addQuery(en *multi.Engine, s qspec) (*multi.Query, *capture) {
	cap := &capture{}
	qc := multi.QueryConfig{
		Cond:       s.cond(),
		Windows:    s.windows,
		Adapt:      s.adapt,
		Policy:     s.policy,
		StaticK:    s.staticK,
		EmitCounts: func(ts stream.Time, n int64) { cap.counts = append(cap.counts, fmt.Sprintf("%d:%d", ts, n)) },
		OnAdapt:    func(ev core.AdaptEvent) { cap.adapts = append(cap.adapts, ev) },
	}
	if s.emit {
		qc.Emit = func(r stream.Result) { cap.results = append(cap.results, resultSig(r)) }
	}
	q := en.Add(qc)
	return q, cap
}

func finishCapture(q *multi.Query, cap *capture) {
	cap.total = q.Results()
	cap.avgK = q.AvgK()
	cap.nAdapt = q.Adaptations()
}

// sameRun asserts bit-for-bit equality of two captures: ordered results,
// ordered count records, the full adaptation-event trajectory, and the
// aggregate counters.
func sameRun(t *testing.T, name string, want, got capture) {
	t.Helper()
	if got.total != want.total {
		t.Errorf("%s: %d results, want %d", name, got.total, want.total)
	}
	if len(got.results) != len(want.results) {
		t.Errorf("%s: %d emitted results, want %d", name, len(got.results), len(want.results))
	} else {
		for i := range want.results {
			if got.results[i] != want.results[i] {
				t.Errorf("%s: result[%d] = %s, want %s", name, i, got.results[i], want.results[i])
				break
			}
		}
	}
	if len(got.counts) != len(want.counts) {
		t.Errorf("%s: %d count records, want %d", name, len(got.counts), len(want.counts))
	} else {
		for i := range want.counts {
			if got.counts[i] != want.counts[i] {
				t.Errorf("%s: count[%d] = %s, want %s", name, i, got.counts[i], want.counts[i])
				break
			}
		}
	}
	if len(got.adapts) != len(want.adapts) {
		t.Errorf("%s: %d adaptation events, want %d", name, len(got.adapts), len(want.adapts))
	} else {
		for i := range want.adapts {
			if got.adapts[i] != want.adapts[i] {
				t.Errorf("%s: adapt[%d] = %+v, want %+v", name, i, got.adapts[i], want.adapts[i])
				break
			}
		}
	}
	if got.avgK != want.avgK {
		t.Errorf("%s: AvgK %v, want %v", name, got.avgK, want.avgK)
	}
	if got.nAdapt != want.nAdapt {
		t.Errorf("%s: %d adaptations, want %d", name, got.nAdapt, want.nAdapt)
	}
}

func windows3() []stream.Time { return []stream.Time{700, 700, 700} }

// TestMultiIdenticalQueries: N identical model-policy queries share one
// ingest lane, one probe class and one residual class, and every one of
// them is bit-for-bit the standalone run — at every tested N, with and
// without materialization.
func TestMultiIdenticalQueries(t *testing.T) {
	leakcheck.Check(t)
	for _, emit := range []bool{false, true} {
		for _, n := range []int{1, 2, 4, 8} {
			for seed := int64(41); seed < 43; seed++ {
				in := mixWorkload(3, 350, seed, 14)
				s := qspec{name: "equichain3", cond: func() *join.Condition { return join.EquiChain(3, 0) },
					windows: windows3(), policy: plan.PolicyModel, adapt: tightAdapt(), emit: emit}
				want := runStandalone(t, s, in.Clone(), true)

				en := multi.NewEngine(3)
				qs := make([]*multi.Query, n)
				caps := make([]*capture, n)
				for i := 0; i < n; i++ {
					qs[i], caps[i] = addQuery(en, s)
				}
				if g := en.Groups(); len(g) != 1 || len(g[0].Classes) != 1 ||
					len(g[0].Classes[0].Residuals) != 1 || g[0].Classes[0].Residuals[0].Members != n {
					t.Fatalf("n=%d: expected 1 lane / 1 class / 1 residual ×%d, got %+v", n, n, g)
				}
				for _, e := range in.Clone() {
					en.Push(e)
				}
				en.Close()
				for i := 0; i < n; i++ {
					finishCapture(qs[i], caps[i])
					sameRun(t, fmt.Sprintf("emit=%t/n=%d/seed%d/q%d", emit, n, seed, i), want, *caps[i])
				}
			}
		}
	}
}

// TestMultiMixedQueries: heterogeneous conditions (equi, band, WhereExpr
// and opaque-closure generics), policies and windows, all in one engine:
// each query is bit-for-bit its standalone run, and structurally distinct
// queries land in distinct lanes or residual classes.
func TestMultiMixedQueries(t *testing.T) {
	leakcheck.Check(t)
	specs := []qspec{
		{name: "equichain-model", cond: func() *join.Condition { return join.EquiChain(3, 0) },
			windows: windows3(), policy: plan.PolicyModel, adapt: tightAdapt(), emit: true},
		{name: "band-mix-model", cond: func() *join.Condition {
			return join.Cross(3).Equi(0, 0, 1, 0).Band(1, 1, 2, 1, 8)
		}, windows: windows3(), policy: plan.PolicyModel, adapt: tightAdapt(), emit: true},
		{name: "generic-expr-nok", cond: func() *join.Condition {
			return join.EquiChain(3, 0).WhereExpr(join.Le(join.Attr(0, 1), join.Add(join.Attr(2, 1), join.ConstOf(40))))
		}, windows: windows3(), policy: plan.PolicyNoK, adapt: tightAdapt(), emit: true},
		{name: "generic-closure-static", cond: func() *join.Condition {
			return join.EquiChain(3, 0).Where([]int{0, 2}, func(a []*stream.Tuple) bool {
				return a[0].Attr(1) <= a[2].Attr(1)+40
			})
		}, windows: windows3(), policy: plan.PolicyStatic, staticK: 900, adapt: tightAdapt(), emit: true},
		{name: "equichain-maxk", cond: func() *join.Condition { return join.EquiChain(3, 0) },
			windows: windows3(), policy: plan.PolicyMaxK, adapt: tightAdapt(), emit: true},
		{name: "equichain-wide-nok", cond: func() *join.Condition { return join.EquiChain(3, 0) },
			windows: []stream.Time{900, 900, 900}, policy: plan.PolicyNoK, adapt: tightAdapt(), emit: false},
	}
	for seed := int64(41); seed < 43; seed++ {
		in := mixWorkload(3, 350, seed, 14)
		wants := make([]capture, len(specs))
		for i, s := range specs {
			wants[i] = runStandalone(t, s, in.Clone(), true)
		}
		en := multi.NewEngine(3)
		qs := make([]*multi.Query, len(specs))
		caps := make([]*capture, len(specs))
		for i, s := range specs {
			qs[i], caps[i] = addQuery(en, s)
		}
		for _, e := range in.Clone() {
			en.Push(e)
		}
		en.Close()
		for i, s := range specs {
			finishCapture(qs[i], caps[i])
			sameRun(t, fmt.Sprintf("%s/seed%d", s.name, seed), wants[i], *caps[i])
		}
	}
}

// TestMultiSharedPrefixGrouping: queries with the same equi/band skeleton
// but different residuals share one probe class with separate residual
// classes; a different skeleton gets its own class.
func TestMultiSharedPrefixGrouping(t *testing.T) {
	leakcheck.Check(t)
	en := multi.NewEngine(3)
	mk := func(c *join.Condition) qspec {
		return qspec{cond: func() *join.Condition { return c },
			windows: windows3(), policy: plan.PolicyNoK, adapt: tightAdapt()}
	}
	addQuery(en, mk(join.EquiChain(3, 0)))
	addQuery(en, mk(join.EquiChain(3, 0).WhereExpr(join.Lt(join.Attr(0, 1), join.Attr(1, 1)))))
	addQuery(en, mk(join.Cross(3).Equi(0, 0, 1, 0).Band(1, 1, 2, 1, 8)))
	g := en.Groups()
	if len(g) != 1 {
		t.Fatalf("expected 1 shared lane (all NoK, same windows), got %d", len(g))
	}
	if len(g[0].Classes) != 2 {
		t.Fatalf("expected 2 probe classes (equichain skeleton ×2 residuals, band skeleton), got %+v", g[0].Classes)
	}
	if len(g[0].Classes[0].Residuals) != 2 {
		t.Fatalf("expected the equichain class to hold 2 residual classes, got %+v", g[0].Classes[0])
	}
}

// TestMultiAddMidStream: a query added after half the input starts cold at
// the current position and is bit-for-bit a standalone run over the
// remaining tuples; the earlier queries stay bit-for-bit their full runs.
func TestMultiAddMidStream(t *testing.T) {
	leakcheck.Check(t)
	for seed := int64(41); seed < 43; seed++ {
		in := mixWorkload(3, 350, seed, 14)
		cut := len(in) / 2
		s := qspec{cond: func() *join.Condition { return join.EquiChain(3, 0) },
			windows: windows3(), policy: plan.PolicyModel, adapt: tightAdapt(), emit: true}
		wantFull := runStandalone(t, s, in.Clone(), true)
		wantTail := runStandalone(t, s, in.Clone()[cut:], true)

		en := multi.NewEngine(3)
		q1, cap1 := addQuery(en, s)
		q2, cap2 := addQuery(en, s)
		feed := in.Clone()
		for _, e := range feed[:cut] {
			en.Push(e)
		}
		q3, cap3 := addQuery(en, s)
		if q3.Epoch() != int64(cut) {
			t.Fatalf("late query epoch = %d, want %d", q3.Epoch(), cut)
		}
		for _, e := range feed[cut:] {
			en.Push(e)
		}
		en.Close()
		finishCapture(q1, cap1)
		finishCapture(q2, cap2)
		finishCapture(q3, cap3)
		sameRun(t, fmt.Sprintf("seed%d/early-q1", seed), wantFull, *cap1)
		sameRun(t, fmt.Sprintf("seed%d/early-q2", seed), wantFull, *cap2)
		sameRun(t, fmt.Sprintf("seed%d/late-q3", seed), wantTail, *cap3)
	}
}

// TestMultiRemoveMidStream: a query removed after half the input has
// produced exactly the results of a standalone run stopped — unflushed —
// at the same position, and the surviving queries are unaffected.
func TestMultiRemoveMidStream(t *testing.T) {
	leakcheck.Check(t)
	for seed := int64(41); seed < 43; seed++ {
		in := mixWorkload(3, 350, seed, 14)
		cut := len(in) / 2
		s := qspec{cond: func() *join.Condition { return join.EquiChain(3, 0) },
			windows: windows3(), policy: plan.PolicyModel, adapt: tightAdapt(), emit: true}
		sOther := qspec{cond: func() *join.Condition {
			return join.Cross(3).Equi(0, 0, 1, 0).Band(1, 1, 2, 1, 8)
		}, windows: windows3(), policy: plan.PolicyModel, adapt: tightAdapt(), emit: true}
		wantFull := runStandalone(t, s, in.Clone(), true)
		wantOther := runStandalone(t, sOther, in.Clone(), true)
		wantHead := runStandalone(t, s, in.Clone()[:cut], false)

		en := multi.NewEngine(3)
		q1, cap1 := addQuery(en, s)
		q2, cap2 := addQuery(en, s)
		qo, capo := addQuery(en, sOther)
		feed := in.Clone()
		for _, e := range feed[:cut] {
			en.Push(e)
		}
		finishCapture(q2, cap2)
		en.Remove(q2)
		for _, e := range feed[cut:] {
			en.Push(e)
		}
		en.Close()
		finishCapture(q1, cap1)
		finishCapture(qo, capo)
		sameRun(t, fmt.Sprintf("seed%d/removed", seed), wantHead, *cap2)
		sameRun(t, fmt.Sprintf("seed%d/survivor-same", seed), wantFull, *cap1)
		sameRun(t, fmt.Sprintf("seed%d/survivor-other", seed), wantOther, *capo)
	}
}

// TestMultiAddRemoveChurn: queries joining and leaving at several points of
// one run, each compared to its standalone reference over exactly the
// arrivals it was registered for.
func TestMultiAddRemoveChurn(t *testing.T) {
	leakcheck.Check(t)
	in := mixWorkload(3, 360, 42, 14)
	third := len(in) / 3
	s := qspec{cond: func() *join.Condition { return join.EquiChain(3, 0) },
		windows: windows3(), policy: plan.PolicyModel, adapt: tightAdapt(), emit: true}

	wantFull := runStandalone(t, s, in.Clone(), true)
	wantMid := runStandalone(t, s, in.Clone()[third:2*third], false)
	wantTail := runStandalone(t, s, in.Clone()[third:], true)

	en := multi.NewEngine(3)
	q1, cap1 := addQuery(en, s)
	feed := in.Clone()
	for _, e := range feed[:third] {
		en.Push(e)
	}
	q2, cap2 := addQuery(en, s)
	q3, cap3 := addQuery(en, s)
	for _, e := range feed[third : 2*third] {
		en.Push(e)
	}
	finishCapture(q2, cap2)
	en.Remove(q2)
	for _, e := range feed[2*third:] {
		en.Push(e)
	}
	en.Close()
	finishCapture(q1, cap1)
	finishCapture(q3, cap3)
	sameRun(t, "churn/full", wantFull, *cap1)
	sameRun(t, "churn/mid", wantMid, *cap2)
	sameRun(t, "churn/tail", wantTail, *cap3)
}

// TestMultiLifecyclePanics pins the engine lifecycle: every misuse panics
// rather than silently corrupting shared state.
func TestMultiLifecyclePanics(t *testing.T) {
	leakcheck.Check(t)
	s := qspec{cond: func() *join.Condition { return join.EquiChain(2, 0) },
		windows: []stream.Time{500, 500}, policy: plan.PolicyNoK, adapt: tightAdapt()}

	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}

	en := multi.NewEngine(2)
	q, _ := addQuery(en, s)
	en.Push(&stream.Tuple{TS: 100, Src: 0, Attrs: []float64{1, 1}})
	en.Close()
	mustPanic("push-after-close", func() { en.Push(&stream.Tuple{TS: 200, Src: 1, Attrs: []float64{1, 1}}) })
	mustPanic("double-close", func() { en.Close() })
	mustPanic("add-after-close", func() { addQuery(en, s) })
	mustPanic("remove-after-close", func() { en.Remove(q) })

	en2 := multi.NewEngine(2)
	q2, _ := addQuery(en2, s)
	en2.Remove(q2)
	mustPanic("double-remove", func() { en2.Remove(q2) })
	mustPanic("remove-foreign", func() {
		en3 := multi.NewEngine(2)
		q3, _ := addQuery(en3, s)
		en2.Remove(q3)
	})
	mustPanic("set-emit-removed", func() { q2.SetEmit(func(stream.Result) {}) })

	mustPanic("mutate-after-add", func() {
		en4 := multi.NewEngine(2)
		cond := join.EquiChain(2, 0)
		en4.Add(multi.QueryConfig{Cond: cond, Windows: []stream.Time{500, 500},
			Adapt: tightAdapt(), Policy: plan.PolicyNoK})
		cond.Equi(0, 1, 1, 1)
	})
	mustPanic("arity-mismatch", func() {
		en5 := multi.NewEngine(3)
		addQuery(en5, s)
	})
}
