// Package multi is the shared-window multi-query engine: N registered join
// queries execute against ONE shared ingest layer per compatibility group —
// one K-slack buffer set, one Synchronizer, one window ring with one
// hash/range index set per (stream, key-class), inserted and expired once
// per arrival regardless of query count — and one probe pass per arrival
// (join.Multi) fans results out to every registered query.
//
// # Sharing hierarchy
//
// The engine never trades sharing for correctness: every query's results and
// K trajectory must be bit-for-bit those of a standalone core.Pipeline fed
// the same arrivals. What may be shared follows from what determines those
// trajectories, and the engine groups accordingly, top down:
//
//   - Cohort (registration epoch): the K-slack delay annotation and the
//     Statistics Manager histories depend on every arrival since the
//     query's registration, so only queries registered at the same point of
//     the input (same count of engine pushes) can share ANY ingest state.
//     Queries added mid-stream start a fresh cohort — cold windows at the
//     current input point, exactly like a standalone join started there.
//     Later cohorts process a per-cohort clone of each arriving tuple,
//     because the K-slack annotates Delay in place and a younger cohort's
//     local clock legitimately disagrees with an older one's.
//
//   - Stats pool (per cohort, per granularity g): stats.Manager.Observe is
//     arrival-driven and query-independent, so one shared manager per
//     distinct granularity is fed exactly once per arrival and every query
//     loop of the cohort reads it (feedback.Config.Stats): N loops cost one
//     Observe per arrival.
//
//   - Group (per cohort, per windows × K-class): queries share K-slack
//     buffers, Synchronizer, and windows only when their K trajectories are
//     provably identical:
//
//     nok      — K is constantly 0 for every such query;
//     static:K — K is constantly K;
//     maxk:fp  — decisions read only the shared stats manager, so equal
//     adaptation parameters (the fingerprint fp) give equal
//     decisions at equal boundaries;
//     model:fp:sig — the model policy also reads the query's own
//     productivity profile and result sizes, so only queries
//     with the IDENTICAL full condition (signature sig) are
//     provably K-equal.
//
//     Within a group the kernel (join.Multi) further groups members by
//     equi/band skeleton so queries sharing a probe prefix share candidate
//     enumeration; see the join.Multi package comment.
//
//   - Decision scope: never shared. Each query keeps its own feedback.Loop
//     (profiler, monitor, policy, boundary schedule, recall accounting), so
//     per-query recall SLOs and K decisions stay exactly standalone.
//
// # Boundary two-phase
//
// At an adaptation boundary every due member decides FIRST and the group
// applies the (provably equal) new K ONCE afterwards: applying K between
// two members' decisions could release buffered tuples whose productivity
// records would pollute the not-yet-decided member's profiler with events a
// standalone run would only see after its decision.
package multi

import (
	"fmt"
	"strings"

	"repro/internal/adapt"
	"repro/internal/core"
	"repro/internal/feedback"
	"repro/internal/join"
	"repro/internal/kslack"
	"repro/internal/plan"
	"repro/internal/stats"
	"repro/internal/stream"
	"repro/internal/syncer"
)

// QueryConfig registers one query with the engine. The zero Adapt/Policy
// values select the paper's model policy with default parameters, exactly
// as on a standalone pipeline.
type QueryConfig struct {
	// Cond is the query's join condition; Cond.M must equal the engine's
	// stream count. The engine seals it — mutating it after Add panics.
	Cond *join.Condition
	// Windows holds the per-stream window extents; length must equal the
	// engine's stream count.
	Windows []stream.Time
	// Adapt carries Γ, P, L, b, g and the selectivity strategy.
	Adapt adapt.Config
	// Policy selects the buffer-size policy; StaticK applies to PolicyStatic.
	Policy  plan.Policy
	StaticK stream.Time
	// Emit optionally receives every produced result of this query. Nil
	// keeps the query's residual class on the counting fast path.
	Emit join.EmitFunc
	// EmitCounts optionally receives per-arrival result counts.
	EmitCounts join.CountEmitFunc
	// OnAdapt optionally observes this query's adaptation steps.
	OnAdapt func(core.AdaptEvent)
}

// Query is one registered query's handle.
type Query struct {
	id     int64
	en     *Engine
	cfg    QueryConfig
	loop   *feedback.Loop
	model  *adapt.Model
	mem    *join.MultiMember
	cohort *cohort
	group  *group
	pool   *statsPool
	curK   stream.Time
	rm     bool
}

// ID returns the engine-assigned query id (registration order, from 0).
func (q *Query) ID() int64 { return q.id }

// Results returns the number of results the query has derived.
func (q *Query) Results() int64 { return q.mem.Results() }

// CurrentK returns the buffer size currently applied to the query's group.
func (q *Query) CurrentK() stream.Time { return q.curK }

// AvgK returns the query's average decided K, the paper's latency metric.
func (q *Query) AvgK() float64 { return q.loop.AvgK(0) }

// Adaptations returns the number of adaptation steps the query performed.
func (q *Query) Adaptations() int64 { return q.loop.Decisions() }

// RecallEstimate reports the query's run-level recall estimate.
func (q *Query) RecallEstimate() float64 { return q.loop.RecallEstimate() }

// Epoch returns the engine push count at which the query registered.
func (q *Query) Epoch() int64 { return q.cohort.epoch }

// Loop exposes the query's feedback loop (read-only use by tests).
func (q *Query) Loop() *feedback.Loop { return q.loop }

// SetEmit installs (or clears) the query's result sink after registration,
// mirroring the classic pipeline's late-sink path: results produced before
// the sink was installed were count-only. A non-nil sink disables the
// counting fast path for the query's residual class.
func (q *Query) SetEmit(f join.EmitFunc) {
	if q.rm {
		panic("multi: SetEmit on a removed query")
	}
	q.cfg.Emit = f
	q.group.op.SetEmit(q.mem, f)
}

// statsPool is one shared Statistics Manager, fed once per cohort arrival
// and read by every query loop of the cohort with matching granularity.
type statsPool struct {
	g    stream.Time
	st   *stats.Manager
	refs int
}

// group is one shared ingest lane: K-slack buffers, Synchronizer and the
// shared-window probe kernel, plus the member queries in registration order.
type group struct {
	key     string
	ks      []*kslack.Buffer
	sync    *syncer.Synchronizer
	op      *join.Multi
	queries []*Query
}

// cohort is one registration epoch's shared state.
type cohort struct {
	epoch  int64 // engine pushes completed when the cohort was created
	pools  []*statsPool
	groups []*group
}

// Engine is the shared-window multi-query engine. It is single-threaded and
// push-based like core.Pipeline; drive it from one goroutine.
type Engine struct {
	m       int
	pushes  int64
	nextID  int64
	cohorts []*cohort
	queries []*Query
	closed  bool

	// condToks tags Condition instances carrying opaque closure predicates:
	// closures cannot be compared structurally, so two queries share a
	// residual class only when they registered the SAME condition instance.
	condToks map[*join.Condition]string
}

// NewEngine creates an empty engine over m streams.
func NewEngine(m int) *Engine {
	if m < 2 {
		panic("multi: need at least 2 streams")
	}
	return &Engine{m: m, condToks: map[*join.Condition]string{}}
}

// M returns the number of input streams.
func (en *Engine) M() int { return en.m }

// Queries returns the number of currently registered queries.
func (en *Engine) Queries() int { return len(en.queries) }

// Pushed returns the number of arrivals consumed so far.
func (en *Engine) Pushed() int64 { return en.pushes }

// adaptFingerprint serializes the normalized adaptation parameters that
// determine a policy's boundary schedule and decision inputs.
func adaptFingerprint(a adapt.Config) string {
	return fmt.Sprintf("g%v;P%d;L%d;b%d;gr%d;st%d;se%d;nc%t",
		a.Gamma, a.P, a.L, a.B, a.G, a.Strategy, a.Search, a.NoCalibration)
}

// kClass names the K-trajectory equivalence class of a query: two queries
// with equal kClass strings (and equal windows, and the same cohort) are
// guaranteed to decide the same K at every boundary.
func kClass(p plan.Policy, staticK stream.Time, a adapt.Config, resSig string) string {
	switch p {
	case plan.PolicyNoK:
		return "nok"
	case plan.PolicyStatic:
		return fmt.Sprintf("static:%d", staticK)
	case plan.PolicyMaxK:
		return "maxk:" + adaptFingerprint(a)
	default:
		return "model:" + adaptFingerprint(a) + ":" + resSig
	}
}

func windowsKey(ws []stream.Time) string {
	var b strings.Builder
	for i, w := range ws {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%d", w)
	}
	return b.String()
}

// tokenFor returns the opaque-closure token of a condition instance,
// assigning a fresh one on first use.
func (en *Engine) tokenFor(c *join.Condition) string {
	if t, ok := en.condToks[c]; ok {
		return t
	}
	t := fmt.Sprintf("c%d", len(en.condToks))
	en.condToks[c] = t
	return t
}

// Add registers a query and returns its handle. The query starts cold at
// the current input point: it joins (or creates) the cohort of the current
// push count, so it only ever shares ingest state with queries that have
// seen exactly the same arrivals.
func (en *Engine) Add(cfg QueryConfig) *Query {
	if en.closed {
		panic("multi: Add on a closed engine — the shared buffers are flushed and cannot be restarted; build a new engine")
	}
	if cfg.Cond == nil || cfg.Cond.M != en.m {
		panic("multi: condition arity must match the engine's stream count")
	}
	if len(cfg.Windows) != en.m {
		panic("multi: window count must match the engine's stream count")
	}
	for _, w := range cfg.Windows {
		if w <= 0 {
			panic("multi: window size must be positive")
		}
	}
	cfg.Adapt = cfg.Adapt.Normalize()

	resSig := join.ResidualSig(cfg.Cond, en.tokenFor(cfg.Cond))
	gKey := windowsKey(cfg.Windows) + "|" + kClass(cfg.Policy, cfg.StaticK, cfg.Adapt, resSig)
	pf, initialK := plan.PolicyFactoryFor(cfg.Policy, cfg.StaticK)

	co := en.cohortAt(en.pushes)
	pool := co.pool(en.m, cfg.Adapt.G)
	g := co.group(gKey, en.m, cfg.Windows, initialK)

	q := &Query{id: en.nextID, en: en, cfg: cfg, cohort: co, group: g, pool: pool, curK: initialK}
	en.nextID++
	q.loop = feedback.New(feedback.Config{
		Windows:  cfg.Windows,
		Adapt:    cfg.Adapt,
		Policy:   core.FeedbackPolicy(pf),
		InitialK: initialK,
		Stats:    pool.st,
	})
	q.model = q.loop.Model(0)
	q.mem = g.op.Add(cfg.Cond, resSig, cfg.Emit, q.onResultCount, q.onProcessed)
	pool.refs++
	g.queries = append(g.queries, q)
	en.queries = append(en.queries, q)
	return q
}

// cohortAt returns the cohort registered at push count epoch, creating it if
// none exists. A cohort is only ever *joined* at its own epoch — the first
// push after creation freezes its membership windows (join.Multi asserts
// this independently).
func (en *Engine) cohortAt(epoch int64) *cohort {
	for _, c := range en.cohorts {
		if c.epoch == epoch {
			return c
		}
	}
	c := &cohort{epoch: epoch}
	en.cohorts = append(en.cohorts, c)
	return c
}

func (c *cohort) pool(m int, g stream.Time) *statsPool {
	for _, p := range c.pools {
		if p.g == g {
			return p
		}
	}
	p := &statsPool{g: g, st: stats.NewManager(m, g)}
	c.pools = append(c.pools, p)
	return p
}

func (c *cohort) group(key string, m int, windows []stream.Time, initialK stream.Time) *group {
	for _, g := range c.groups {
		if g.key == key {
			return g
		}
	}
	g := &group{key: key, op: join.NewMulti(windows)}
	g.sync = syncer.New(m, g.op.Process)
	g.ks = make([]*kslack.Buffer, m)
	for i := range g.ks {
		g.ks[i] = kslack.New(initialK, g.sync.Push)
	}
	c.groups = append(c.groups, g)
	return g
}

// onResultCount is the per-query count hook, mirroring the classic
// pipeline's onResultCount.
func (q *Query) onResultCount(ts stream.Time, n int64) {
	q.loop.ObserveResult(ts, n)
	if q.cfg.EmitCounts != nil {
		q.cfg.EmitCounts(ts, n)
	}
}

// onProcessed is the per-query productivity hook (line 11, Alg. 2).
func (q *Query) onProcessed(e *stream.Tuple, nCross, nOn int64, inOrder bool) {
	if inOrder {
		q.loop.RecordInOrder(0, e.Delay, nCross, nOn)
	} else {
		q.loop.RecordOutOfOrder(0, e.Delay)
	}
}

// Push feeds one raw arrival to every cohort and runs any adaptation steps
// whose interval boundaries the arrival crossed, per query. The first cohort
// consumes the caller's tuple exactly as a standalone pipeline would; each
// later cohort processes its own shallow clone (shared attributes), because
// the K-slack annotates Delay in place against the cohort's own local clock.
func (en *Engine) Push(e *stream.Tuple) {
	if en.closed {
		panic("multi: Push on a closed engine — Close flushed the buffers and a run cannot be restarted; build a new engine")
	}
	for ci, co := range en.cohorts {
		t := e
		if ci > 0 {
			t = &stream.Tuple{TS: e.TS, Seq: e.Seq, Src: e.Src, Attrs: e.Attrs}
		}
		for _, p := range co.pools {
			p.st.Observe(t)
		}
		for _, g := range co.groups {
			g.ks[t.Src].Push(t)
			g.boundary(t)
		}
	}
	en.pushes++
}

// pending is one due-but-unapplied boundary decision.
type pending struct {
	q        *Query
	at, newK stream.Time
}

// boundary runs the per-member boundary protocol for one arrival: every due
// member decides against the shared kernel's watermark, then the group
// applies the single (provably equal) new K, then the adaptation hooks fire
// — the same per-member event order as a standalone pipeline's adaptStep.
func (g *group) boundary(t *stream.Tuple) {
	var due []pending
	var outT stream.Time
	for _, q := range g.queries {
		now := q.loop.Observe(t)
		at, ok := q.loop.Boundary(now)
		if !ok {
			continue
		}
		if len(due) == 0 {
			outT = g.op.HighWatermark()
		}
		newK := q.loop.DecideAt(at, outT)[0]
		due = append(due, pending{q: q, at: at, newK: newK})
	}
	if len(due) == 0 {
		return
	}
	newK := due[0].newK
	for _, d := range due[1:] {
		if d.newK != newK {
			panic(fmt.Sprintf("multi: internal: divergent K decisions (%d vs %d) within shared group %q — the K-class invariant is broken", newK, d.newK, g.key))
		}
	}
	for _, k := range g.ks {
		k.SetK(newK)
	}
	for _, d := range due {
		prevK := d.q.curK
		d.q.curK = newK
		if d.q.cfg.OnAdapt != nil {
			ev := core.AdaptEvent{Now: d.at, OutT: outT, PrevK: prevK, NewK: newK}
			if d.q.model != nil {
				ev.GammaPrime = d.q.model.LastGammaPrime()
			}
			d.q.cfg.OnAdapt(ev)
		}
	}
}

// Remove detaches a query at the current input point: its residual class
// (and compiled residuals) are freed, its feedback loop is dropped, and the
// shared windows remain untouched for the surviving queries. The results the
// query produced so far are exactly those of a standalone run stopped — not
// finished — at the same point: Remove does NOT flush the group's buffers,
// because the surviving queries still need them.
func (en *Engine) Remove(q *Query) {
	if en.closed {
		panic("multi: Remove on a closed engine")
	}
	if q == nil || q.rm || q.en != en {
		panic("multi: Remove of an unknown or already-removed query")
	}
	q.rm = true
	q.group.op.Remove(q.mem)
	for i, other := range q.group.queries {
		if other == q {
			q.group.queries = append(q.group.queries[:i], q.group.queries[i+1:]...)
			break
		}
	}
	for i, other := range en.queries {
		if other == q {
			en.queries = append(en.queries[:i], en.queries[i+1:]...)
			break
		}
	}
	q.pool.refs--
	co := q.cohort
	if len(q.group.queries) == 0 {
		for i, g := range co.groups {
			if g == q.group {
				co.groups = append(co.groups[:i], co.groups[i+1:]...)
				break
			}
		}
	}
	if q.pool.refs == 0 {
		for i, p := range co.pools {
			if p == q.pool {
				co.pools = append(co.pools[:i], co.pools[i+1:]...)
				break
			}
		}
	}
	if len(co.groups) == 0 && len(co.pools) == 0 {
		for i, c := range en.cohorts {
			if c == co {
				en.cohorts = append(en.cohorts[:i], en.cohorts[i+1:]...)
				break
			}
		}
	}
}

// Close flushes every group's K-slack buffers and Synchronizer at end of
// input so every remaining tuple reaches the shared kernels — the exact
// Finish sequence of the classic pipeline, applied once per group instead
// of once per query. Closing twice panics, as does pushing afterwards.
func (en *Engine) Close() {
	if en.closed {
		panic("multi: Close on a closed engine — the run is already flushed and cannot be restarted")
	}
	en.closed = true
	for _, co := range en.cohorts {
		for _, g := range co.groups {
			for _, k := range g.ks {
				k.Flush()
			}
			for i := 0; i < en.m; i++ {
				g.sync.Close(i)
			}
		}
	}
}

// GroupInfo describes one shared ingest lane for explain output.
type GroupInfo struct {
	Epoch   int64
	Key     string
	Queries []int64
	Classes []join.MultiClassInfo
}

// Groups lists the engine's shared ingest lanes with their probe classes,
// in cohort and registration order.
func (en *Engine) Groups() []GroupInfo {
	var out []GroupInfo
	for _, co := range en.cohorts {
		for _, g := range co.groups {
			gi := GroupInfo{Epoch: co.epoch, Key: g.key, Classes: g.op.ClassInfos()}
			for _, q := range g.queries {
				gi.Queries = append(gi.Queries, q.id)
			}
			out = append(out, gi)
		}
	}
	return out
}
