// Command qdhjgen generates the evaluation datasets of Sec. VI and writes
// them as CSV for use with qdhjrun or external tools.
//
// Usage:
//
//	qdhjgen -dataset x3 -minutes 30 -seed 42 -o dsyn3.csv
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/gen"
	"repro/internal/stream"
)

func main() {
	var (
		dataset = flag.String("dataset", "x3", "dataset key: x2|x3|x4|phaseflip")
		minutes = flag.Float64("minutes", 5, "simulated stream horizon")
		seed    = flag.Int64("seed", 42, "generator seed")
		out     = flag.String("o", "", "output file (default stdout)")
	)
	flag.Parse()

	dur := stream.Time(*minutes * float64(stream.Minute))
	var ds *gen.Dataset
	switch *dataset {
	case "x2":
		ds = gen.Soccer(gen.SoccerConfig{Duration: dur, Seed: *seed})
	case "x3":
		ds = gen.Synthetic3(gen.SynthConfig{Duration: dur, Seed: *seed})
	case "x4":
		ds = gen.Synthetic4(gen.SynthConfig{Duration: dur, Seed: *seed})
	case "phaseflip":
		ds = gen.PhaseFlip4(dur, *seed)
	default:
		fmt.Fprintf(os.Stderr, "unknown dataset %q (want x2|x3|x4|phaseflip)\n", *dataset)
		os.Exit(2)
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	if err := ds.WriteCSV(w); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	maxD, _ := ds.Arrivals.MaxDelay()
	fmt.Fprintf(os.Stderr, "%s: %d tuples, %d streams, max delay %v\n",
		ds.Name, len(ds.Arrivals), ds.M, maxD)
}
