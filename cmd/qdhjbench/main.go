// Command qdhjbench reproduces the paper's evaluation (Sec. VI): every
// table and figure can be regenerated individually or all at once.
//
// Usage:
//
//	qdhjbench -exp all -minutes 5
//	qdhjbench -exp fig7 -datasets x2,x3 -minutes 10 -seed 7
//
// Experiments: fig6, table2, fig7, fig8, fig9, fig10, fig11, ablations, all.
// Durations default to 5 simulated minutes per dataset; the paper used
// 23–30 minutes, which `-minutes 25` replays in a few minutes of real time.
//
// With -benchjson FILE the tool instead measures raw operator throughput
// (the join executor without disorder handling) per dataset and writes a
// machine-readable JSON report, so the repository's performance trajectory
// can be recorded across PRs. The report sweeps the sharded execution
// layer over -shards (default 1,2,4,8; 1 is the classic single-threaded
// path), recording the host's CPU budget alongside, since shard speedup is
// bounded by available cores:
//
//	qdhjbench -benchjson BENCH_3.json -shards 1,2,4,8
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	stdnet "net"
	"os"
	"runtime"
	"strings"
	"time"

	qdhj "repro"
	"repro/internal/exp"
	"repro/internal/gen"
	"repro/internal/join"
	qnet "repro/internal/net"
	"repro/internal/stream"
)

func main() {
	var (
		expName   = flag.String("exp", "all", "experiment: fig6|table2|fig7|fig8|fig9|fig10|fig11|ablations|all")
		minutes   = flag.Float64("minutes", 5, "simulated stream horizon per dataset (paper: 23-30)")
		seed      = flag.Int64("seed", 42, "generator seed")
		datasets  = flag.String("datasets", "x2,x3,x4", "comma-separated dataset keys")
		benchJSON = flag.String("benchjson", "", "write an operator-throughput JSON report to this file and exit")
		shards    = flag.String("shards", "1,2,4,8", "comma-separated shard counts for the -benchjson sweep")
		cpus      = flag.Int("cpus", 0, "GOMAXPROCS for the run (0 keeps the runtime default); recorded in the report")
	)
	flag.Parse()
	if *cpus > 0 {
		runtime.GOMAXPROCS(*cpus)
	}

	keys := strings.Split(*datasets, ",")
	start := time.Now()
	var dss []*exp.Dataset
	for _, k := range keys {
		k = strings.TrimSpace(k)
		if k == "" {
			continue
		}
		fmt.Fprintf(os.Stderr, "preparing %s (%.1f min, seed %d)...\n", k, *minutes, *seed)
		dss = append(dss, exp.Prepare(k, *minutes, *seed))
	}
	fmt.Fprintf(os.Stderr, "datasets ready in %v\n\n", time.Since(start).Round(time.Millisecond))

	if *benchJSON != "" {
		if err := runBenchJSON(*benchJSON, *minutes, *seed, parseShards(*shards), dss); err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "wrote %s in %v\n", *benchJSON, time.Since(start).Round(time.Millisecond))
		return
	}

	w := os.Stdout
	run := func(name string) {
		switch name {
		case "fig6":
			exp.Fig6(w, dss)
		case "table2":
			exp.Table2(w, dss)
		case "fig7":
			exp.Fig7(w, dss)
		case "fig8":
			exp.Fig8(w, pick(dss, exp.KeyX2, exp.KeyX3))
		case "fig9":
			exp.Fig9(w, pick(dss, exp.KeyX2, exp.KeyX3))
		case "fig10":
			exp.Fig10(w, pick(dss, exp.KeyX2, exp.KeyX3))
		case "fig11":
			exp.Fig11(w, dss)
		case "ablations":
			exp.Ablations(w, dss)
		default:
			fmt.Fprintf(os.Stderr, "unknown experiment %q\n", name)
			os.Exit(2)
		}
		fmt.Fprintln(w)
	}
	if *expName == "all" {
		for _, n := range []string{"fig6", "table2", "fig7", "fig8", "fig9", "fig10", "fig11", "ablations"} {
			run(n)
		}
	} else {
		run(*expName)
	}
	fmt.Fprintf(os.Stderr, "total wall time %v\n", time.Since(start).Round(time.Millisecond))
}

// parseShards parses the -shards list, defaulting to {1} on garbage.
func parseShards(s string) []int {
	var out []int
	for _, f := range strings.Split(s, ",") {
		var n int
		if _, err := fmt.Sscanf(strings.TrimSpace(f), "%d", &n); err == nil && n >= 1 {
			out = append(out, n)
		}
	}
	if len(out) == 0 {
		out = []int{1}
	}
	return out
}

// benchEntry is one dataset × configuration throughput measurement. Mode
// "operator" entries sweep the sharded MJoin operator (Shards 1 is the
// classic single-threaded path); mode "tree" entries sweep the binary-tree
// deployment's adaptation policies (fixed-K at the dataset's max delay,
// Same-K-adaptive, per-stage-adaptive); mode "plan" entries (schema v4)
// sweep the deployment planner's shapes on the sparse star workload —
// flat, broadcast flat shards, and the stage-wise sharded tree — at full
// buffering, so result counts must be identical across shapes. Mode "batch"
// entries (schema v4) sweep the columnar release batch size on the
// single-threaded operator path (WithBatchSize over 1,16,64,256 — 1 is the
// per-tuple reference); result counts must be identical at every size, only
// throughput moves. RelRecall
// is the tree run's result count relative to its fixed-K (full-buffering)
// run; SumBufKSec is the total buffered delay Σ_intervals Σ_buffers K in
// seconds — the aggregate latency the adaptation paid, which per-stage K
// exists to shrink.
// Mode "fault" entries (schema v4) sweep the fault-tolerant runtime:
// FaultOp "checkpoint-overhead" runs supervised — arrival logging, gated
// delivery, automatic boundary checkpoints at the default cadence — on the
// same feed as a bare executor. CkptOverhead is the fraction of the
// supervised run's wall time spent inside checkpoint captures (measured
// directly, so it is robust to machine noise); SupOverhead is the whole
// supervised-vs-bare throughput ratio minus one (best run of five each,
// interleaved — still a difference of two wall times, so read it with the
// usual single-machine error bars); Checkpoints counts the captures.
// FaultOp "recovery" injects deterministic worker panics and records the
// restarts and the wall time spent inside checkpoint-restore-replay
// recoveries.
// Mode "replan" entries (schema v4) sweep the online re-planner on the
// phase-flipping star workload: Migrations counts completed live plan
// migrations, PauseTotalSec/PauseMaxSec the wall-clock stalls they imposed
// on the driver (the acceptance bound is PauseMaxSec well under one
// measurement period — the re-planning cadence, recorded as
// ReplanPeriodSec in stream seconds), and PhaseRecall the per-phase result
// counts relative to the uninterrupted full-buffering flat reference
// (shape "flat-static"). A full-buffering run under re-planning must score
// exactly 1 in every phase: migration preserves the delivered multiset.
// Mode "net" entries (schema v4) sweep the wire framing of the networked
// worker runtime: the same NoSlack sharded join deployed onto localhost
// worker daemons via WithRemoteWorkers, at frame batch sizes 1, 16, 64 and
// 256 (Batch; 1 is per-tuple framing — one frame and one write syscall per
// tuple). Batch cuts are a pure function of the input, so the result count
// must be identical at every size; only throughput moves. The acceptance
// floor is batch-64 at ≥5× the per-tuple rate.
// Mode "multi" entries (schema v4) sweep the shared-window multi-query
// engine: Queries identical NoSlack queries run once on one MultiJoin
// (shape "shared") versus Queries independent Joins each replaying the
// whole feed (shape "independent"). Throughput is feed tuples per second —
// the aggregate rate at which the deployment serves all queries — and the
// per-query result counts must be identical between the two shapes at
// every query count.
type benchEntry struct {
	Dataset         string    `json:"dataset"`
	Mode            string    `json:"mode"`
	Queries         int       `json:"queries,omitempty"`
	Shards          int       `json:"shards,omitempty"`
	Batch           int       `json:"batch,omitempty"`
	Partition       string    `json:"partition,omitempty"`
	TreeAdapt       string    `json:"tree_adapt,omitempty"`
	Shape           string    `json:"shape,omitempty"`
	FaultOp         string    `json:"fault_op,omitempty"`
	Tuples          int       `json:"tuples"`
	Results         int64     `json:"results"`
	RelRecall       float64   `json:"rel_recall,omitempty"`
	SumBufKSec      float64   `json:"sum_buf_k_sec,omitempty"`
	Checkpoints     int64     `json:"checkpoints,omitempty"`
	CkptOverhead    float64   `json:"ckpt_overhead,omitempty"`
	SupOverhead     float64   `json:"sup_overhead,omitempty"`
	Restarts        int       `json:"restarts,omitempty"`
	RecoverySec     float64   `json:"recovery_sec,omitempty"`
	Migrations      int       `json:"migrations,omitempty"`
	PauseTotalSec   float64   `json:"pause_total_sec,omitempty"`
	PauseMaxSec     float64   `json:"pause_max_sec,omitempty"`
	ReplanPeriodSec float64   `json:"replan_period_sec,omitempty"`
	PhaseRecall     []float64 `json:"phase_recall,omitempty"`
	Seconds         float64   `json:"seconds"`
	TuplesPerSec    float64   `json:"tuples_per_s"`
	AllocsPerTuple  float64   `json:"allocs_per_tuple"`
	BytesPerTuple   float64   `json:"bytes_per_tuple"`
}

// benchReport is the machine-readable throughput record. GoMaxProcs is the
// scheduler's parallelism budget at measurement time — NumCPU is the
// machine, GoMaxProcs is what the run was actually allowed to use (they
// differ under -cpus or a GOMAXPROCS env override), and shard/worker
// speedups must be read against the latter.
type benchReport struct {
	Schema     string       `json:"schema"`
	GoVersion  string       `json:"go_version"`
	GOOS       string       `json:"goos"`
	GOARCH     string       `json:"goarch"`
	NumCPU     int          `json:"num_cpu"`
	GoMaxProcs int          `json:"gomaxprocs"`
	Minutes    float64      `json:"minutes"`
	Seed       int64        `json:"seed"`
	Entries    []benchEntry `json:"entries"`
}

// runBenchJSON measures raw MSWJ operator throughput (NoSlack policy,
// counting-only probe path) on each dataset × shard count and writes the
// JSON report.
func runBenchJSON(path string, minutes float64, seed int64, shardCounts []int, dss []*exp.Dataset) error {
	rep := benchReport{
		Schema:     "qdhj-operator-throughput/4",
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		NumCPU:     runtime.NumCPU(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Minutes:    minutes,
		Seed:       seed,
	}
	for _, ds := range dss {
		for _, nShards := range shardCounts {
			in := ds.Arrivals.Clone()
			opts := []qdhj.JoinOption{}
			part := ""
			if nShards > 1 {
				opts = append(opts, qdhj.WithShards(nShards))
				part = ds.Cond.Partition().Mode.String()
			}
			runtime.GC()
			var m0, m1 runtime.MemStats
			runtime.ReadMemStats(&m0)
			t0 := time.Now()
			j := qdhj.NewJoin(ds.Cond, ds.Windows, qdhj.Options{Policy: qdhj.NoSlack}, opts...)
			for _, e := range in {
				j.Push(e)
			}
			j.Close()
			dt := time.Since(t0).Seconds()
			runtime.ReadMemStats(&m1)
			n := len(in)
			rep.Entries = append(rep.Entries, benchEntry{
				Dataset:        ds.Name,
				Mode:           "operator",
				Shards:         nShards,
				Partition:      part,
				Tuples:         n,
				Results:        j.Results(),
				Seconds:        dt,
				TuplesPerSec:   float64(n) / dt,
				AllocsPerTuple: float64(m1.Mallocs-m0.Mallocs) / float64(n),
				BytesPerTuple:  float64(m1.TotalAlloc-m0.TotalAlloc) / float64(n),
			})
			fmt.Fprintf(os.Stderr, "%-22s shards=%d %9d tuples  %12.0f tuples/s  %6.2f allocs/tuple\n",
				ds.Name, nShards, n, float64(n)/dt, float64(m1.Mallocs-m0.Mallocs)/float64(n))
		}
	}
	rep.Entries = append(rep.Entries, benchBatch(dss)...)
	rep.Entries = append(rep.Entries, benchTree(minutes, seed)...)
	rep.Entries = append(rep.Entries, benchPlanX4(minutes, seed, shardCounts)...)
	rep.Entries = append(rep.Entries, benchFault(minutes, seed)...)
	rep.Entries = append(rep.Entries, benchReplan(minutes, seed)...)
	rep.Entries = append(rep.Entries, benchMulti(minutes, seed)...)
	rep.Entries = append(rep.Entries, benchNet(minutes, seed)...)
	out, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(out, '\n'), 0o644)
}

// benchBatch sweeps the columnar release batch size on the single-threaded
// operator path (mode "batch"): the same datasets and NoSlack counting-only
// configuration as the mode "operator" shards=1 entries, with the
// synchronizer's output buffered into runs of up to Batch tuples before the
// probe kernel sees them. Batch 1 is the per-tuple reference; the batched
// runs must reproduce its result count exactly (the batching contract is
// bit-for-bit), so a count mismatch prints a warning. Throughput is
// single-core — batching amortizes dispatch, it adds no parallelism.
func benchBatch(dss []*exp.Dataset) []benchEntry {
	var out []benchEntry
	for _, ds := range dss {
		var refResults int64
		for _, batch := range []int{1, 16, 64, 256} {
			in := ds.Arrivals.Clone()
			opts := []qdhj.JoinOption{}
			if batch > 1 {
				opts = append(opts, qdhj.WithBatchSize(batch))
			}
			runtime.GC()
			var m0, m1 runtime.MemStats
			runtime.ReadMemStats(&m0)
			t0 := time.Now()
			j := qdhj.NewJoin(ds.Cond, ds.Windows, qdhj.Options{Policy: qdhj.NoSlack}, opts...)
			for _, e := range in {
				j.Push(e)
			}
			j.Close()
			dt := time.Since(t0).Seconds()
			runtime.ReadMemStats(&m1)
			n := len(in)
			if batch == 1 {
				refResults = j.Results()
			} else if j.Results() != refResults {
				fmt.Fprintf(os.Stderr, "WARNING: batch=%d produced %d results, per-tuple produced %d — batching must be bit-for-bit\n",
					batch, j.Results(), refResults)
			}
			out = append(out, benchEntry{
				Dataset:        ds.Name,
				Mode:           "batch",
				Batch:          batch,
				Tuples:         n,
				Results:        j.Results(),
				Seconds:        dt,
				TuplesPerSec:   float64(n) / dt,
				AllocsPerTuple: float64(m1.Mallocs-m0.Mallocs) / float64(n),
				BytesPerTuple:  float64(m1.TotalAlloc-m0.TotalAlloc) / float64(n),
			})
			fmt.Fprintf(os.Stderr, "%-22s batch=%-4d %9d tuples  %12.0f tuples/s  %6.2f allocs/tuple\n",
				ds.Name, batch, n, float64(n)/dt, float64(m1.Mallocs-m0.Mallocs)/float64(n))
		}
	}
	return out
}

// treeDataset builds the tree-sweep workload: a sparse-key (domain 500)
// disordered 3-way equi join with asymmetric per-stream delays (streams 0/1
// ≤ 150 ms, stream 2 ≤ 2.5 s). The paper's evaluation datasets are dense —
// a 5-minute x3 derives hundreds of millions of results, which the tree
// would materialize one intermediate at a time — while tree deployments
// target exactly this low-selectivity regime; the asymmetry is what the
// per-stage policy exists to exploit.
func treeDataset(minutes float64, seed int64) (stream.Batch, *join.Condition, []stream.Time) {
	n := int(minutes * float64(stream.Minute) / 10)
	in := gen.SparseEqui3(n, seed, 500, [3]stream.Time{150, 150, 2500})
	w := 2 * stream.Second
	return in, join.EquiChain(3, 0), []stream.Time{w, w, w}
}

// benchTree sweeps the binary-tree deployment's adaptation policies on the
// sparse asymmetric-delay tree workload: fixed-K at the feed's maximum
// delay (the full-buffering reference all RelRecall values are measured
// against), Same-K-adaptive, and per-stage-adaptive (Γ = 0.95, the paper's
// default requirement).
func benchTree(minutes float64, seed int64) []benchEntry {
	arrivals, cond, windows := treeDataset(minutes, seed)
	maxD, _ := arrivals.MaxDelay()
	aopt := qdhj.Options{Gamma: 0.95, Period: 30 * qdhj.Second, Interval: qdhj.Second}
	configs := []struct {
		name     string
		initialK qdhj.Time
		opts     []qdhj.TreeOption
	}{
		{"fixed", maxD, nil},
		{"same-k", 0, []qdhj.TreeOption{qdhj.WithTreeAdaptation(aopt)}},
		{"per-stage", 0, []qdhj.TreeOption{qdhj.WithTreeAdaptation(aopt), qdhj.WithPerStageK()}},
	}
	var out []benchEntry
	var fixedResults int64
	for _, c := range configs {
		in := arrivals.Clone()
		runtime.GC()
		var m0, m1 runtime.MemStats
		runtime.ReadMemStats(&m0)
		t0 := time.Now()
		j := qdhj.NewTreeJoin(cond, windows, c.initialK, nil, c.opts...)
		for _, e := range in {
			j.Push(e)
		}
		j.Close()
		dt := time.Since(t0).Seconds()
		runtime.ReadMemStats(&m1)
		n := len(in)
		e := benchEntry{
			Dataset:        "tree-sparse-x3",
			Mode:           "tree",
			TreeAdapt:      c.name,
			Tuples:         n,
			Results:        j.Results(),
			SumBufKSec:     j.BufferedDelaySum() / 1000,
			Seconds:        dt,
			TuplesPerSec:   float64(n) / dt,
			AllocsPerTuple: float64(m1.Mallocs-m0.Mallocs) / float64(n),
			BytesPerTuple:  float64(m1.TotalAlloc-m0.TotalAlloc) / float64(n),
		}
		if c.name == "fixed" {
			fixedResults = j.Results()
		} else if fixedResults > 0 {
			e.RelRecall = float64(j.Results()) / float64(fixedResults)
		}
		out = append(out, e)
		fmt.Fprintf(os.Stderr, "%-22s tree/%-9s %9d tuples  %12.0f tuples/s  recall≈%.4f  ΣK=%.0fs\n",
			"tree-sparse-x3", c.name, n, e.TuplesPerSec, e.RelRecall, e.SumBufKSec)
	}
	return out
}

// benchPlanX4 sweeps the deployment planner's shapes on a sparse-key
// disordered 4-way star (schema v4): the flat operator, the broadcast flat
// shards (the condition has no full key class, so plain WithShards must
// broadcast the spokes), and the auto-planned stage-wise sharded tree —
// every binary stage hash-partitioned on its own cross key, no broadcast
// route. All runs use fixed full buffering (K = max delay), so the result
// counts must be identical across shapes; the sweep records throughput.
// The paper's dense x4 is unusable here — a tree materializes every
// intermediate — hence the sparse workload, exactly as benchTree's.
func benchPlanX4(minutes float64, seed int64, shardCounts []int) []benchEntry {
	n := int(minutes * float64(stream.Minute) / 10)
	arrivals := gen.SparseStar4(n, seed, 500, [4]stream.Time{500, 500, 500, 500})
	maxD, _ := arrivals.MaxDelay()
	w := []stream.Time{2 * stream.Second, 2 * stream.Second, 2 * stream.Second, 2 * stream.Second}
	star := func() *join.Condition { return join.Star(4, []int{0, 1, 2}, []int{0, 0, 0}) }
	opt := qdhj.Options{Policy: qdhj.StaticSlack, StaticK: maxD}

	type cfg struct {
		shape  string
		shards int
		build  func() (*qdhj.Join, string)
	}
	var cfgs []cfg
	cfgs = append(cfgs, cfg{"flat", 1, func() (*qdhj.Join, string) {
		return qdhj.NewJoin(star(), w, opt), ""
	}})
	for _, nShards := range shardCounts {
		if nShards <= 1 {
			continue
		}
		nShards := nShards
		cfgs = append(cfgs,
			cfg{"shard-broadcast", nShards, func() (*qdhj.Join, string) {
				c := star()
				return qdhj.NewJoin(c, w, opt, qdhj.WithShards(nShards)), c.Partition().Mode.String()
			}},
			cfg{"stage-sharded", nShards, func() (*qdhj.Join, string) {
				c := star()
				p := qdhj.AutoPlan(c, w, qdhj.PlanHints{Shards: nShards})
				return qdhj.NewJoin(c, w, opt, qdhj.WithPlan(p)), "stage-equi"
			}})
	}

	var out []benchEntry
	var flatResults int64
	for _, c := range cfgs {
		in := arrivals.Clone()
		runtime.GC()
		var m0, m1 runtime.MemStats
		runtime.ReadMemStats(&m0)
		t0 := time.Now()
		j, part := c.build()
		for _, e := range in {
			j.Push(e)
		}
		j.Close()
		dt := time.Since(t0).Seconds()
		runtime.ReadMemStats(&m1)
		e := benchEntry{
			Dataset:        "star-sparse-x4",
			Mode:           "plan",
			Shape:          c.shape,
			Shards:         c.shards,
			Partition:      part,
			Tuples:         len(in),
			Results:        j.Results(),
			Seconds:        dt,
			TuplesPerSec:   float64(len(in)) / dt,
			AllocsPerTuple: float64(m1.Mallocs-m0.Mallocs) / float64(len(in)),
			BytesPerTuple:  float64(m1.TotalAlloc-m0.TotalAlloc) / float64(len(in)),
		}
		if c.shape == "flat" {
			flatResults = j.Results()
		} else if j.Results() != flatResults {
			fmt.Fprintf(os.Stderr, "WARNING: %s/%d produced %d results, flat produced %d — shapes must agree at full buffering\n",
				c.shape, c.shards, j.Results(), flatResults)
		}
		out = append(out, e)
		fmt.Fprintf(os.Stderr, "%-22s plan/%-15s shards=%d %8d tuples  %12.0f tuples/s  %d results\n",
			"star-sparse-x4", c.shape, c.shards, len(in), e.TuplesPerSec, e.Results)
	}
	return out
}

// benchFault sweeps the fault-tolerant runtime on the sparse tree workload
// (the same feed as benchTree, adaptive policy) for the flat sharded and
// stage-sharded tree shapes. Per shape it measures (1) the steady-state
// cost of running supervised — arrival logging, delivery gating and the
// default once-per-measurement-period checkpoint cadence — relative to the
// bare executor (both best of five runs, to keep the small ratio out of
// the timing noise), and (2) the wall time spent recovering from two
// injected worker panics.
func benchFault(minutes float64, seed int64) []benchEntry {
	arrivals, cond, windows := treeDataset(minutes, seed)
	opt := qdhj.Options{Gamma: 0.95, Period: 30 * qdhj.Second, Interval: qdhj.Second}
	var out []benchEntry
	for _, spec := range []string{"shard:2", "tree-shard:2"} {
		mkOpts := func(extra ...qdhj.JoinOption) []qdhj.JoinOption {
			p, err := qdhj.ParsePlan(spec, cond, windows, 0)
			if err != nil {
				panic(err)
			}
			return append([]qdhj.JoinOption{qdhj.WithPlan(p)}, extra...)
		}
		measure := func(jopts []qdhj.JoinOption) (*qdhj.Join, benchEntry) {
			in := arrivals.Clone()
			runtime.GC()
			var m0, m1 runtime.MemStats
			runtime.ReadMemStats(&m0)
			t0 := time.Now()
			j := qdhj.NewJoin(cond, windows, opt, jopts...)
			for _, e := range in {
				j.Push(e)
			}
			j.Close()
			dt := time.Since(t0).Seconds()
			runtime.ReadMemStats(&m1)
			n := len(in)
			return j, benchEntry{
				Dataset:        "tree-sparse-x3",
				Mode:           "fault",
				Shape:          spec,
				Tuples:         n,
				Results:        j.Results(),
				Seconds:        dt,
				TuplesPerSec:   float64(n) / dt,
				AllocsPerTuple: float64(m1.Mallocs-m0.Mallocs) / float64(n),
				BytesPerTuple:  float64(m1.TotalAlloc-m0.TotalAlloc) / float64(n),
			}
		}

		// Bare executor vs supervised (default checkpoint cadence), the
		// reps interleaved so both see the same machine conditions; the
		// overhead ratio compares the best run of each.
		bareOpts := mkOpts()
		supOpts := mkOpts(qdhj.WithSupervision(qdhj.Supervision{}))
		var j *qdhj.Join
		var base, sup benchEntry
		for i := 0; i < 5; i++ {
			if _, e := measure(bareOpts); i == 0 || e.Seconds < base.Seconds {
				base = e
			}
			if bj, e := measure(supOpts); i == 0 || e.Seconds < sup.Seconds {
				j, sup = bj, e
			}
		}
		sup.FaultOp = "checkpoint-overhead"
		sup.Checkpoints = int64(j.Checkpoints())
		sup.CkptOverhead = j.CheckpointTime().Seconds() / sup.Seconds
		sup.SupOverhead = sup.Seconds/base.Seconds - 1
		out = append(out, sup)
		fmt.Fprintf(os.Stderr, "%-22s fault/%-12s %-19s %9d tuples  %12.0f tuples/s  %d ckpts  ckpt %.2f%%  supervised %+.2f%%\n",
			"tree-sparse-x3", spec, "ckpt-overhead", sup.Tuples, sup.TuplesPerSec,
			sup.Checkpoints, 100*sup.CkptOverhead, 100*sup.SupOverhead)

		// Supervised with two injected worker kills: recovery wall time is
		// the time spent inside the Push calls whose restart count moved.
		n := int64(len(arrivals))
		inj := qdhj.NewInjector().PanicAt(0, n/3).PanicAt(1, 2*n/3)
		in := arrivals.Clone()
		jf := qdhj.NewJoin(cond, windows, opt, mkOpts(
			qdhj.WithInjector(inj), qdhj.WithSupervision(qdhj.Supervision{}))...)
		var recovery time.Duration
		prevRestarts := 0
		t0 := time.Now()
		for _, e := range in {
			p0 := time.Now()
			jf.Push(e)
			if r := jf.Restarts(); r != prevRestarts {
				recovery += time.Since(p0)
				prevRestarts = r
			}
		}
		jf.Close()
		dt := time.Since(t0).Seconds()
		if err := jf.Err(); err != nil {
			fmt.Fprintf(os.Stderr, "WARNING: fault sweep %s went terminal: %v\n", spec, err)
			continue
		}
		rec := benchEntry{
			Dataset:      "tree-sparse-x3",
			Mode:         "fault",
			Shape:        spec,
			FaultOp:      "recovery",
			Tuples:       len(in),
			Results:      jf.Results(),
			Restarts:     jf.Restarts(),
			RecoverySec:  recovery.Seconds(),
			Seconds:      dt,
			TuplesPerSec: float64(len(in)) / dt,
		}
		if jf.Results() != base.Results {
			fmt.Fprintf(os.Stderr, "WARNING: recovered run produced %d results, bare run %d — must agree\n",
				jf.Results(), base.Results)
		}
		out = append(out, rec)
		fmt.Fprintf(os.Stderr, "%-22s fault/%-12s %-19s %9d tuples  %12.0f tuples/s  %d restarts  recovery %.3fs\n",
			"tree-sparse-x3", spec, "recovery", rec.Tuples, rec.TuplesPerSec, rec.Restarts, rec.RecoverySec)
	}
	return out
}

// benchReplan sweeps the online re-planner on the phase-flipping star
// workload: four phases alternating dense (domain 12) and sparse (domain
// 600) keys, the regime boundary where the measured-stats cost model must
// flip the live plan between the flat operator and the binary tree at each
// phase change. "flat-static" is the uninterrupted full-buffering flat
// reference every PhaseRecall is measured against; "replan-static" runs
// the same full-buffering policy under WithOnlineReplan, so its recall
// must be exactly 1 in every phase — the migrations are invisible in the
// result stream; "replan-adaptive" runs the quality-driven policy
// (Γ = 0.95) under re-planning, where recall tracks the buffer-shrinking
// adaptation, not the migrations. Migration pause is wall time the driver
// spent inside plan.Migrate; the acceptance bound is max pause ≤ one
// measurement period.
func benchReplan(minutes float64, seed int64) []benchEntry {
	const phases = 4
	ticks := int(minutes * float64(stream.Minute) / 10)
	per := ticks / phases
	if per < 1 {
		per = 1
	}
	in := gen.PhaseFlipStar4(phases, per, seed, 12, 600, 200)
	maxD, _ := in.MaxDelay()
	w := []stream.Time{600, 600, 600, 600}
	star := func() *join.Condition { return join.Star(4, []int{0, 1, 2}, []int{0, 0, 0}) }
	phaseLen := stream.Time(per) * 10
	phaseOf := func(ts stream.Time) int {
		p := int((ts - 5001) / phaseLen)
		if p < 0 {
			p = 0
		}
		if p >= phases {
			p = phases - 1
		}
		return p
	}
	replanPeriod := 5 * stream.Second

	cfgs := []struct {
		shape  string
		opt    qdhj.Options
		replan bool
	}{
		{"flat-static", qdhj.Options{Policy: qdhj.StaticSlack, StaticK: maxD}, false},
		{"replan-static", qdhj.Options{Policy: qdhj.StaticSlack, StaticK: maxD}, true},
		{"replan-adaptive", qdhj.Options{Gamma: 0.95, Period: 30 * qdhj.Second, Interval: qdhj.Second}, true},
	}
	var out []benchEntry
	var ref []int64
	for _, c := range cfgs {
		feed := in.Clone()
		counts := make([]int64, phases)
		jopts := []qdhj.JoinOption{
			qdhj.WithResults(func(r qdhj.Result) { counts[phaseOf(r.TS)]++ }),
		}
		var pauseTotal, pauseMax time.Duration
		if c.replan {
			jopts = append(jopts, qdhj.WithOnlineReplan(qdhj.ReplanOptions{
				Period:      replanPeriod,
				MinDwell:    2 * replanPeriod,
				Improvement: 1.25,
				OnMigrate: func(ev qdhj.MigrationEvent) {
					pauseTotal += ev.Pause
					if ev.Pause > pauseMax {
						pauseMax = ev.Pause
					}
				},
			}))
		}
		runtime.GC()
		var m0, m1 runtime.MemStats
		runtime.ReadMemStats(&m0)
		t0 := time.Now()
		j := qdhj.NewJoin(star(), w, c.opt, jopts...)
		for _, e := range feed {
			j.Push(e)
		}
		j.Close()
		dt := time.Since(t0).Seconds()
		runtime.ReadMemStats(&m1)
		n := len(feed)
		e := benchEntry{
			Dataset:        "flip-star-x4",
			Mode:           "replan",
			Shape:          c.shape,
			Tuples:         n,
			Results:        j.Results(),
			Migrations:     j.Migrations(),
			PauseTotalSec:  pauseTotal.Seconds(),
			PauseMaxSec:    pauseMax.Seconds(),
			Seconds:        dt,
			TuplesPerSec:   float64(n) / dt,
			AllocsPerTuple: float64(m1.Mallocs-m0.Mallocs) / float64(n),
			BytesPerTuple:  float64(m1.TotalAlloc-m0.TotalAlloc) / float64(n),
		}
		if c.replan {
			e.ReplanPeriodSec = float64(replanPeriod) / float64(stream.Second)
		}
		if c.shape == "flat-static" {
			ref = counts
		} else {
			e.PhaseRecall = make([]float64, phases)
			for p := range e.PhaseRecall {
				if ref[p] > 0 {
					e.PhaseRecall[p] = float64(counts[p]) / float64(ref[p])
				}
			}
			if c.shape == "replan-static" {
				for p, r := range e.PhaseRecall {
					if r != 1 {
						fmt.Fprintf(os.Stderr, "WARNING: replan-static recall %.6f in phase %d — migration must preserve the result multiset\n", r, p)
					}
				}
			}
		}
		out = append(out, e)
		fmt.Fprintf(os.Stderr, "%-22s replan/%-15s %8d tuples  %12.0f tuples/s  %d migrations  pause max %.1fms  recall %v\n",
			"flip-star-x4", c.shape, n, e.TuplesPerSec, e.Migrations, 1000*e.PauseMaxSec, e.PhaseRecall)
	}
	return out
}

// benchMulti sweeps the shared-window multi-query engine (mode "multi"):
// N identical NoSlack equi-chain queries served by one MultiJoin replaying
// the feed once, versus N independent Joins each replaying the whole feed.
// The feed is the sparse symmetric-delay equi workload, capped so the
// N=1000 independent reference stays bearable (the shared run's cost grows
// with distinct probe prefixes, not with N — one residual class serves all
// N queries here — while the independent reference is inherently N full
// pipelines). Construction and feed cloning sit outside the timed region
// for both shapes; per-query result counts must be identical between the
// shapes at every N.
func benchMulti(minutes float64, seed int64) []benchEntry {
	ticks := int(minutes * float64(stream.Minute) / 10)
	if ticks > 4000 {
		ticks = 4000
	}
	in := gen.SparseEqui3(ticks, seed, 500, [3]stream.Time{150, 150, 150})
	w := []stream.Time{2 * stream.Second, 2 * stream.Second, 2 * stream.Second}
	cond := func() *join.Condition { return join.EquiChain(3, 0) }
	opt := qdhj.Options{Policy: qdhj.NoSlack}
	n := len(in)

	var out []benchEntry
	for _, nq := range []int{1, 2, 4, 8, 16, 64, 256, 1000} {
		// Shared: one MultiJoin carrying nq queries, the feed pushed once.
		feed := in.Clone()
		mj := qdhj.NewMultiJoin(3)
		mqs := make([]*qdhj.MultiQuery, nq)
		for i := range mqs {
			mqs[i] = mj.Add(cond(), w, opt)
		}
		runtime.GC()
		var m0, m1 runtime.MemStats
		runtime.ReadMemStats(&m0)
		t0 := time.Now()
		for _, e := range feed {
			mj.Push(e)
		}
		mj.Close()
		dtShared := time.Since(t0).Seconds()
		runtime.ReadMemStats(&m1)
		sharedResults := mqs[0].Results()
		for i, mq := range mqs {
			if mq.Results() != sharedResults {
				fmt.Fprintf(os.Stderr, "WARNING: shared query %d produced %d results, query 0 produced %d — identical queries must agree\n",
					i, mq.Results(), sharedResults)
			}
		}
		out = append(out, benchEntry{
			Dataset:        "multi-sparse-x3",
			Mode:           "multi",
			Shape:          "shared",
			Queries:        nq,
			Tuples:         n,
			Results:        sharedResults,
			Seconds:        dtShared,
			TuplesPerSec:   float64(n) / dtShared,
			AllocsPerTuple: float64(m1.Mallocs-m0.Mallocs) / float64(n),
			BytesPerTuple:  float64(m1.TotalAlloc-m0.TotalAlloc) / float64(n),
		})

		// Independent: nq standalone Joins, each replaying the whole feed;
		// the timed regions are summed across runs.
		var dtInd float64
		var indResults int64
		indAgree := true
		runtime.GC()
		runtime.ReadMemStats(&m0)
		for i := 0; i < nq; i++ {
			f := in.Clone()
			j := qdhj.NewJoin(cond(), w, opt)
			t0 := time.Now()
			for _, e := range f {
				j.Push(e)
			}
			j.Close()
			dtInd += time.Since(t0).Seconds()
			if i == 0 {
				indResults = j.Results()
			} else if j.Results() != indResults {
				indAgree = false
			}
		}
		runtime.ReadMemStats(&m1)
		if !indAgree || indResults != sharedResults {
			fmt.Fprintf(os.Stderr, "WARNING: independent runs produced %d results, shared produced %d — shapes must agree at every query count\n",
				indResults, sharedResults)
		}
		out = append(out, benchEntry{
			Dataset:        "multi-sparse-x3",
			Mode:           "multi",
			Shape:          "independent",
			Queries:        nq,
			Tuples:         n,
			Results:        indResults,
			Seconds:        dtInd,
			TuplesPerSec:   float64(n) / dtInd,
			AllocsPerTuple: float64(m1.Mallocs-m0.Mallocs) / float64(n) / float64(nq),
			BytesPerTuple:  float64(m1.TotalAlloc-m0.TotalAlloc) / float64(n) / float64(nq),
		})
		fmt.Fprintf(os.Stderr, "%-22s multi N=%-5d %8d tuples  shared %12.0f tuples/s  independent %12.0f tuples/s  (%.1fx)  %d results\n",
			"multi-sparse-x3", nq, n, float64(n)/dtShared, float64(n)/dtInd, dtInd/dtShared, sharedResults)
	}
	return out
}

// benchNet sweeps the networked runtime's frame batch size (mode "net"):
// a 2-worker sharded NoSlack equi join on the sparse symmetric-delay feed,
// the workers being in-process Serve loops on loopback — the same code
// cmd/qdhjd runs, minus the process boundary, so the sweep isolates the
// framing cost (syscalls per tuple) rather than scheduler placement. The
// daemons persist across the sweep; each batch setting is a fresh session
// against the same pinned deployment.
func benchNet(minutes float64, seed int64) []benchEntry {
	ticks := int(minutes * float64(stream.Minute) / 10)
	in := gen.SparseEqui3(ticks, seed, 500, [3]stream.Time{150, 150, 150})
	w := []stream.Time{2 * stream.Second, 2 * stream.Second, 2 * stream.Second}
	const workers = 2

	addrs := make([]string, workers)
	var listeners []stdnet.Listener
	defer func() {
		for _, l := range listeners {
			l.Close()
		}
	}()
	for i := range addrs {
		l, err := stdnet.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			fmt.Fprintf(os.Stderr, "WARNING: net sweep skipped: %v\n", err)
			return nil
		}
		addrs[i] = l.Addr().String()
		listeners = append(listeners, l)
		go func() { _ = qnet.Serve(l, qnet.ServeConfig{}) }()
	}

	var out []benchEntry
	var refResults int64
	var perTupleRate float64
	for _, batch := range []int{1, 16, 64, 256} {
		feed := in.Clone()
		runtime.GC()
		var m0, m1 runtime.MemStats
		runtime.ReadMemStats(&m0)
		t0 := time.Now()
		j := qdhj.NewJoin(join.EquiChain(3, 0), w, qdhj.Options{Policy: qdhj.NoSlack},
			qdhj.WithRemoteWorkers(addrs...), qdhj.WithFrameBatch(batch))
		for _, e := range feed {
			j.Push(e)
		}
		j.Close()
		dt := time.Since(t0).Seconds()
		runtime.ReadMemStats(&m1)
		n := len(feed)
		tps := float64(n) / dt
		if batch == 1 {
			refResults, perTupleRate = j.Results(), tps
		} else if j.Results() != refResults {
			fmt.Fprintf(os.Stderr, "WARNING: net batch=%d produced %d results, per-tuple produced %d — framing must be bit-for-bit\n",
				batch, j.Results(), refResults)
		}
		out = append(out, benchEntry{
			Dataset:        "net-sparse-x3",
			Mode:           "net",
			Shards:         workers,
			Batch:          batch,
			Tuples:         n,
			Results:        j.Results(),
			Seconds:        dt,
			TuplesPerSec:   tps,
			AllocsPerTuple: float64(m1.Mallocs-m0.Mallocs) / float64(n),
			BytesPerTuple:  float64(m1.TotalAlloc-m0.TotalAlloc) / float64(n),
		})
		note := ""
		if batch == 64 && perTupleRate > 0 {
			note = fmt.Sprintf("  (%.1fx per-tuple)", tps/perTupleRate)
			if tps < 5*perTupleRate {
				fmt.Fprintf(os.Stderr, "WARNING: net batch=64 at %.1fx per-tuple — below the 5x acceptance floor\n", tps/perTupleRate)
			}
		}
		fmt.Fprintf(os.Stderr, "%-22s net/batch=%-4d workers=%d %8d tuples  %12.0f tuples/s  %d results%s\n",
			"net-sparse-x3", batch, workers, n, tps, j.Results(), note)
	}
	return out
}

// pick filters datasets to the given keys (Fig. 8–10 use x2 and x3, as the
// paper does), falling back to whatever was prepared.
func pick(dss []*exp.Dataset, keys ...string) []*exp.Dataset {
	byKey := map[string]bool{}
	for _, k := range keys {
		byKey[k] = true
	}
	var out []*exp.Dataset
	for _, ds := range dss {
		switch {
		case byKey[exp.KeyX2] && strings.Contains(ds.Name, "real"):
			out = append(out, ds)
		case byKey[exp.KeyX3] && strings.Contains(ds.Name, "x3"):
			out = append(out, ds)
		case byKey[exp.KeyX4] && strings.Contains(ds.Name, "x4"):
			out = append(out, ds)
		}
	}
	if len(out) == 0 {
		return dss
	}
	return out
}
