// Command qdhjbench reproduces the paper's evaluation (Sec. VI): every
// table and figure can be regenerated individually or all at once.
//
// Usage:
//
//	qdhjbench -exp all -minutes 5
//	qdhjbench -exp fig7 -datasets x2,x3 -minutes 10 -seed 7
//
// Experiments: fig6, table2, fig7, fig8, fig9, fig10, fig11, ablations, all.
// Durations default to 5 simulated minutes per dataset; the paper used
// 23–30 minutes, which `-minutes 25` replays in a few minutes of real time.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/exp"
)

func main() {
	var (
		expName  = flag.String("exp", "all", "experiment: fig6|table2|fig7|fig8|fig9|fig10|fig11|ablations|all")
		minutes  = flag.Float64("minutes", 5, "simulated stream horizon per dataset (paper: 23-30)")
		seed     = flag.Int64("seed", 42, "generator seed")
		datasets = flag.String("datasets", "x2,x3,x4", "comma-separated dataset keys")
	)
	flag.Parse()

	keys := strings.Split(*datasets, ",")
	start := time.Now()
	var dss []*exp.Dataset
	for _, k := range keys {
		k = strings.TrimSpace(k)
		if k == "" {
			continue
		}
		fmt.Fprintf(os.Stderr, "preparing %s (%.1f min, seed %d)...\n", k, *minutes, *seed)
		dss = append(dss, exp.Prepare(k, *minutes, *seed))
	}
	fmt.Fprintf(os.Stderr, "datasets ready in %v\n\n", time.Since(start).Round(time.Millisecond))

	w := os.Stdout
	run := func(name string) {
		switch name {
		case "fig6":
			exp.Fig6(w, dss)
		case "table2":
			exp.Table2(w, dss)
		case "fig7":
			exp.Fig7(w, dss)
		case "fig8":
			exp.Fig8(w, pick(dss, exp.KeyX2, exp.KeyX3))
		case "fig9":
			exp.Fig9(w, pick(dss, exp.KeyX2, exp.KeyX3))
		case "fig10":
			exp.Fig10(w, pick(dss, exp.KeyX2, exp.KeyX3))
		case "fig11":
			exp.Fig11(w, dss)
		case "ablations":
			exp.Ablations(w, dss)
		default:
			fmt.Fprintf(os.Stderr, "unknown experiment %q\n", name)
			os.Exit(2)
		}
		fmt.Fprintln(w)
	}
	if *expName == "all" {
		for _, n := range []string{"fig6", "table2", "fig7", "fig8", "fig9", "fig10", "fig11", "ablations"} {
			run(n)
		}
	} else {
		run(*expName)
	}
	fmt.Fprintf(os.Stderr, "total wall time %v\n", time.Since(start).Round(time.Millisecond))
}

// pick filters datasets to the given keys (Fig. 8–10 use x2 and x3, as the
// paper does), falling back to whatever was prepared.
func pick(dss []*exp.Dataset, keys ...string) []*exp.Dataset {
	byKey := map[string]bool{}
	for _, k := range keys {
		byKey[k] = true
	}
	var out []*exp.Dataset
	for _, ds := range dss {
		switch {
		case byKey[exp.KeyX2] && strings.Contains(ds.Name, "real"):
			out = append(out, ds)
		case byKey[exp.KeyX3] && strings.Contains(ds.Name, "x3"):
			out = append(out, ds)
		case byKey[exp.KeyX4] && strings.Contains(ds.Name, "x4"):
			out = append(out, ds)
		}
	}
	if len(out) == 0 {
		return dss
	}
	return out
}
