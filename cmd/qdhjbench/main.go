// Command qdhjbench reproduces the paper's evaluation (Sec. VI): every
// table and figure can be regenerated individually or all at once.
//
// Usage:
//
//	qdhjbench -exp all -minutes 5
//	qdhjbench -exp fig7 -datasets x2,x3 -minutes 10 -seed 7
//
// Experiments: fig6, table2, fig7, fig8, fig9, fig10, fig11, ablations, all.
// Durations default to 5 simulated minutes per dataset; the paper used
// 23–30 minutes, which `-minutes 25` replays in a few minutes of real time.
//
// With -benchjson FILE the tool instead measures raw operator throughput
// (the join executor without disorder handling) per dataset and writes a
// machine-readable JSON report, so the repository's performance trajectory
// can be recorded across PRs. The report sweeps the sharded execution
// layer over -shards (default 1,2,4,8; 1 is the classic single-threaded
// path), recording the host's CPU budget alongside, since shard speedup is
// bounded by available cores:
//
//	qdhjbench -benchjson BENCH_3.json -shards 1,2,4,8
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	qdhj "repro"
	"repro/internal/exp"
)

func main() {
	var (
		expName   = flag.String("exp", "all", "experiment: fig6|table2|fig7|fig8|fig9|fig10|fig11|ablations|all")
		minutes   = flag.Float64("minutes", 5, "simulated stream horizon per dataset (paper: 23-30)")
		seed      = flag.Int64("seed", 42, "generator seed")
		datasets  = flag.String("datasets", "x2,x3,x4", "comma-separated dataset keys")
		benchJSON = flag.String("benchjson", "", "write an operator-throughput JSON report to this file and exit")
		shards    = flag.String("shards", "1,2,4,8", "comma-separated shard counts for the -benchjson sweep")
	)
	flag.Parse()

	keys := strings.Split(*datasets, ",")
	start := time.Now()
	var dss []*exp.Dataset
	for _, k := range keys {
		k = strings.TrimSpace(k)
		if k == "" {
			continue
		}
		fmt.Fprintf(os.Stderr, "preparing %s (%.1f min, seed %d)...\n", k, *minutes, *seed)
		dss = append(dss, exp.Prepare(k, *minutes, *seed))
	}
	fmt.Fprintf(os.Stderr, "datasets ready in %v\n\n", time.Since(start).Round(time.Millisecond))

	if *benchJSON != "" {
		if err := runBenchJSON(*benchJSON, *minutes, *seed, parseShards(*shards), dss); err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "wrote %s in %v\n", *benchJSON, time.Since(start).Round(time.Millisecond))
		return
	}

	w := os.Stdout
	run := func(name string) {
		switch name {
		case "fig6":
			exp.Fig6(w, dss)
		case "table2":
			exp.Table2(w, dss)
		case "fig7":
			exp.Fig7(w, dss)
		case "fig8":
			exp.Fig8(w, pick(dss, exp.KeyX2, exp.KeyX3))
		case "fig9":
			exp.Fig9(w, pick(dss, exp.KeyX2, exp.KeyX3))
		case "fig10":
			exp.Fig10(w, pick(dss, exp.KeyX2, exp.KeyX3))
		case "fig11":
			exp.Fig11(w, dss)
		case "ablations":
			exp.Ablations(w, dss)
		default:
			fmt.Fprintf(os.Stderr, "unknown experiment %q\n", name)
			os.Exit(2)
		}
		fmt.Fprintln(w)
	}
	if *expName == "all" {
		for _, n := range []string{"fig6", "table2", "fig7", "fig8", "fig9", "fig10", "fig11", "ablations"} {
			run(n)
		}
	} else {
		run(*expName)
	}
	fmt.Fprintf(os.Stderr, "total wall time %v\n", time.Since(start).Round(time.Millisecond))
}

// parseShards parses the -shards list, defaulting to {1} on garbage.
func parseShards(s string) []int {
	var out []int
	for _, f := range strings.Split(s, ",") {
		var n int
		if _, err := fmt.Sscanf(strings.TrimSpace(f), "%d", &n); err == nil && n >= 1 {
			out = append(out, n)
		}
	}
	if len(out) == 0 {
		out = []int{1}
	}
	return out
}

// benchEntry is one dataset × shard-count throughput measurement. Shards 1
// is the classic single-threaded path (no shard runtime at all).
type benchEntry struct {
	Dataset        string  `json:"dataset"`
	Shards         int     `json:"shards"`
	Partition      string  `json:"partition,omitempty"`
	Tuples         int     `json:"tuples"`
	Results        int64   `json:"results"`
	Seconds        float64 `json:"seconds"`
	TuplesPerSec   float64 `json:"tuples_per_s"`
	AllocsPerTuple float64 `json:"allocs_per_tuple"`
	BytesPerTuple  float64 `json:"bytes_per_tuple"`
}

// benchReport is the machine-readable throughput record.
type benchReport struct {
	Schema    string       `json:"schema"`
	GoVersion string       `json:"go_version"`
	GOOS      string       `json:"goos"`
	GOARCH    string       `json:"goarch"`
	NumCPU    int          `json:"num_cpu"`
	Minutes   float64      `json:"minutes"`
	Seed      int64        `json:"seed"`
	Entries   []benchEntry `json:"entries"`
}

// runBenchJSON measures raw MSWJ operator throughput (NoSlack policy,
// counting-only probe path) on each dataset × shard count and writes the
// JSON report.
func runBenchJSON(path string, minutes float64, seed int64, shardCounts []int, dss []*exp.Dataset) error {
	rep := benchReport{
		Schema:    "qdhj-operator-throughput/2",
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		NumCPU:    runtime.NumCPU(),
		Minutes:   minutes,
		Seed:      seed,
	}
	for _, ds := range dss {
		for _, nShards := range shardCounts {
			in := ds.Arrivals.Clone()
			opts := []qdhj.JoinOption{}
			part := ""
			if nShards > 1 {
				opts = append(opts, qdhj.WithShards(nShards))
				part = ds.Cond.Partition().Mode.String()
			}
			runtime.GC()
			var m0, m1 runtime.MemStats
			runtime.ReadMemStats(&m0)
			t0 := time.Now()
			j := qdhj.NewJoin(ds.Cond, ds.Windows, qdhj.Options{Policy: qdhj.NoSlack}, opts...)
			for _, e := range in {
				j.Push(e)
			}
			j.Close()
			dt := time.Since(t0).Seconds()
			runtime.ReadMemStats(&m1)
			n := len(in)
			rep.Entries = append(rep.Entries, benchEntry{
				Dataset:        ds.Name,
				Shards:         nShards,
				Partition:      part,
				Tuples:         n,
				Results:        j.Results(),
				Seconds:        dt,
				TuplesPerSec:   float64(n) / dt,
				AllocsPerTuple: float64(m1.Mallocs-m0.Mallocs) / float64(n),
				BytesPerTuple:  float64(m1.TotalAlloc-m0.TotalAlloc) / float64(n),
			})
			fmt.Fprintf(os.Stderr, "%-22s shards=%d %9d tuples  %12.0f tuples/s  %6.2f allocs/tuple\n",
				ds.Name, nShards, n, float64(n)/dt, float64(m1.Mallocs-m0.Mallocs)/float64(n))
		}
	}
	out, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(out, '\n'), 0o644)
}

// pick filters datasets to the given keys (Fig. 8–10 use x2 and x3, as the
// paper does), falling back to whatever was prepared.
func pick(dss []*exp.Dataset, keys ...string) []*exp.Dataset {
	byKey := map[string]bool{}
	for _, k := range keys {
		byKey[k] = true
	}
	var out []*exp.Dataset
	for _, ds := range dss {
		switch {
		case byKey[exp.KeyX2] && strings.Contains(ds.Name, "real"):
			out = append(out, ds)
		case byKey[exp.KeyX3] && strings.Contains(ds.Name, "x3"):
			out = append(out, ds)
		case byKey[exp.KeyX4] && strings.Contains(ds.Name, "x4"):
			out = append(out, ds)
		}
	}
	if len(out) == 0 {
		return dss
	}
	return out
}
