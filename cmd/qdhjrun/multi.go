// Multi-query execution for qdhjrun: -queries <spec-file> registers every
// query in the file against one shared-window MultiJoin, replays the feed
// once, and reports per-query result counts and recall. With -explain the
// run is skipped and the sharing structure (shared ingest lanes, probe
// classes with their shared equi/band prefixes, residual fan-out) is
// printed instead.
//
// Spec format: one query per line; blank lines and #-comments are skipped.
// The first token is a query key (the same keys -query takes: x2|x3|x4|
// cross|equichain); the rest are optional key=value overrides:
//
//	x3
//	x3 policy=nok
//	x3 policy=static k=1.5
//	equichain gamma=0.9
//	x4 policy=maxk
//
// Per-query policy/gamma/k default to the run-level -policy/-gamma/-k
// flags; P, L and the selectivity strategy are shared by all queries.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	qdhj "repro"
	"repro/internal/adapt"
	"repro/internal/gen"
	"repro/internal/oracle"
	"repro/internal/stream"
)

// querySpec is one parsed line of a -queries file.
type querySpec struct {
	line    int
	query   string
	policy  string
	gamma   float64
	staticK float64 // seconds
}

// parseQuerySpecs reads a -queries file, applying run-level defaults to
// fields a line does not override.
func parseQuerySpecs(path, defPolicy string, defGamma, defK float64) ([]querySpec, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var specs []querySpec
	sc := bufio.NewScanner(f)
	for ln := 1; sc.Scan(); ln++ {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		s := querySpec{line: ln, query: fields[0], policy: defPolicy, gamma: defGamma, staticK: defK}
		for _, kv := range fields[1:] {
			k, v, ok := strings.Cut(kv, "=")
			if !ok {
				return nil, fmt.Errorf("%s:%d: expected key=value, got %q", path, ln, kv)
			}
			switch k {
			case "policy":
				s.policy = v
			case "gamma":
				if s.gamma, err = strconv.ParseFloat(v, 64); err != nil {
					return nil, fmt.Errorf("%s:%d: bad gamma %q", path, ln, v)
				}
			case "k":
				if s.staticK, err = strconv.ParseFloat(v, 64); err != nil {
					return nil, fmt.Errorf("%s:%d: bad k %q", path, ln, v)
				}
			default:
				return nil, fmt.Errorf("%s:%d: unknown key %q (want policy|gamma|k)", path, ln, k)
			}
		}
		switch s.policy {
		case "model", "maxk", "nok", "static":
		default:
			return nil, fmt.Errorf("%s:%d: unknown policy %q", path, ln, s.policy)
		}
		specs = append(specs, s)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(specs) == 0 {
		return nil, fmt.Errorf("%s: no queries", path)
	}
	return specs, nil
}

// options maps one spec to the per-query Options a MultiJoin Add takes.
func (s querySpec) options(acfg adapt.Config) qdhj.Options {
	opt := qdhj.Options{
		Gamma:    s.gamma,
		Period:   acfg.P,
		Interval: acfg.L,
		Strategy: acfg.Strategy,
	}
	switch s.policy {
	case "maxk":
		opt.Policy = qdhj.MaxSlack
	case "nok":
		opt.Policy = qdhj.NoSlack
	case "static":
		opt.Policy = qdhj.StaticSlack
		opt.StaticK = stream.Time(s.staticK * float64(stream.Second))
	}
	return opt
}

// runMulti executes (or, with explainOnly, just plans) every query of a
// -queries file against one shared-window MultiJoin.
func runMulti(in, specPath string, acfg adapt.Config, defPolicy string, defGamma, defK float64, explainOnly bool) {
	specs, err := parseQuerySpecs(specPath, defPolicy, defGamma, defK)
	if err != nil {
		fatal(err)
	}

	var ds *gen.Dataset
	m := 0
	var windows []stream.Time
	if in != "" {
		f, err := os.Open(in)
		if err != nil {
			fatal(err)
		}
		ds, err = gen.ReadCSV(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
		m, windows = ds.M, ds.Windows
	} else if explainOnly {
		// No feed needed to show the sharing structure, but the queries
		// must pin the arity themselves.
		for _, s := range specs {
			qm := 0
			switch s.query {
			case "x2":
				qm = 2
			case "x3":
				qm = 3
			case "x4":
				qm = 4
			default:
				fatal(fmt.Errorf("-explain without -in needs fixed-arity queries (x2|x3|x4), got %q", s.query))
			}
			if m == 0 {
				m = qm
			} else if qm != m {
				fatal(fmt.Errorf("mixed query arities %d and %d in %s", m, qm, specPath))
			}
		}
		windows = make([]stream.Time, m)
		for i := range windows {
			windows[i] = 2 * stream.Second
		}
	} else {
		flag.Usage()
		os.Exit(2)
	}

	mj := qdhj.NewMultiJoin(m)
	mqs := make([]*qdhj.MultiQuery, len(specs))
	for i, s := range specs {
		mqs[i] = mj.Add(queryFor(s.query, m), windows, s.options(acfg))
	}
	if explainOnly {
		fmt.Print(mj.Explain())
		return
	}

	// Oracle ground truth once per distinct condition, not once per query.
	truthFor := map[string]int64{}
	for _, s := range specs {
		if _, ok := truthFor[s.query]; !ok {
			fmt.Fprintf(os.Stderr, "computing oracle ground truth for %s...\n", s.query)
			truthFor[s.query] = oracle.TrueResults(queryFor(s.query, m), windows, ds.Arrivals).Total()
		}
	}

	for _, e := range ds.Arrivals.Clone() {
		mj.Push(e)
	}
	mj.Close()

	fmt.Printf("dataset:        %s (%d tuples, %d streams)\n", ds.Name, len(ds.Arrivals), m)
	fmt.Printf("queries:        %d over %d shared lanes\n", len(specs), len(mj.SharingInfo()))
	for i, s := range specs {
		mq := mqs[i]
		recall := 0.0
		if t := truthFor[s.query]; t > 0 {
			recall = float64(mq.Results()) / float64(t)
		}
		fmt.Printf("  q%-3d %-10s %-7s produced %9d of %9d (recall %.4f)  avgK %.3f s  adapt %d\n",
			i, s.query, s.policy, mq.Results(), truthFor[s.query], recall,
			mq.AvgK()/1000, mq.Adaptations())
	}
	fmt.Fprint(os.Stderr, mj.Explain())
}
