// Command qdhjrun replays a CSV dataset (see qdhjgen) through the
// quality-driven disorder handling framework and reports result counts,
// average buffer size and recall against the oracle. Every deployment
// shape is drivable: the single MJoin-style operator (default), the
// left-deep binary tree (-tree), the pipelined tree (-pipelined), and any
// planner shape via -plan — including bushy trees and stage-wise sharding.
// -explain prints the chosen plan graph (shape, shard routes, per-stage K
// scopes) without running.
//
// Usage:
//
//	qdhjgen -dataset x3 -minutes 10 -o d.csv
//	qdhjrun -in d.csv -query x3 -gamma 0.95 -policy model
//	qdhjrun -in d.csv -query x3 -tree -perstage
//	qdhjrun -query x4 -shards 4 -explain            # what would auto pick?
//	qdhjrun -in d.csv -query x4 -plan auto -shards 4
//	qdhjrun -in d.csv -query x4 -plan '((0 1)x4 2 3)x4'
//	qdhjrun -in d.csv -query x3 -batch 64           # columnar release batches
//
// Fault tolerance (the planned path): -checkpoint writes a restorable
// snapshot partway through the feed and exits; -restore resumes a run from
// one; -inject arms the deterministic fault injector (which implies
// supervision — injected worker panics recover instead of crashing):
//
//	qdhjrun -in d.csv -query x3 -plan shard:2 -checkpoint snap.bin
//	qdhjrun -in d.csv -query x3 -plan shard:2 -restore snap.bin -inject panic@shard1:tuple5000
//
// Online re-planning: -replan measures arrival rates and selectivities on
// the running join, re-plans every -replan-period, and live-migrates
// between shapes; -explain-live additionally prints the plan graph before
// and after every migration:
//
//	qdhjgen -dataset phaseflip -minutes 2 -o flip.csv
//	qdhjrun -in flip.csv -query x4 -replan -replan-period 2 -explain-live
package main

import (
	"encoding/binary"
	"flag"
	"fmt"
	"os"
	"time"

	qdhj "repro"
	"repro/internal/adapt"
	"repro/internal/core"
	"repro/internal/exp"
	"repro/internal/gen"
	"repro/internal/join"
	"repro/internal/oracle"
	"repro/internal/stream"
)

func main() {
	var (
		in        = flag.String("in", "", "input CSV (from qdhjgen); required")
		query     = flag.String("query", "x3", "query: x2|x3|x4|cross|equichain")
		gamma     = flag.Float64("gamma", 0.95, "recall requirement Γ")
		periodS   = flag.Float64("P", 60, "measurement period P (seconds)")
		interval  = flag.Float64("L", 1, "adaptation interval L (seconds)")
		policy    = flag.String("policy", "model", "policy: model|maxk|nok|static")
		staticK   = flag.Float64("k", 0, "buffer size for -policy static (seconds)")
		strategy  = flag.String("strategy", "noneqsel", "selectivity strategy: eqsel|noneqsel")
		tree      = flag.Bool("tree", false, "execute as a left-deep binary tree (Sec. V) instead of the single operator")
		pipelined = flag.Bool("pipelined", false, "execute as the pipelined binary tree (one goroutine per stage)")
		perStage  = flag.Bool("perstage", false, "with -tree/-pipelined: one adaptive K per binary stage instead of Same-K")
		shards    = flag.Int("shards", 0, "shard budget: parallel workers for the planner / sharded operator")
		batch     = flag.Int("batch", 0, "columnar release batch size (0 or 1 = per-tuple); results and K trajectory are bit-for-bit identical at any size")
		planSpec  = flag.String("plan", "", "deployment plan spec: auto|flat|shard[:N]|tree|tree-shard[:N] or a shape s-expression like '((0 1)x4 2)x4'")
		explain   = flag.Bool("explain", false, "print the plan graph (shape, shard routes, per-stage K scopes) and exit; works without -in")
		ckptFile  = flag.String("checkpoint", "", "write a snapshot to this file after -checkpoint-at arrivals and exit")
		ckptAt    = flag.Int("checkpoint-at", 0, "arrival count to checkpoint at (default: half the feed)")
		restore   = flag.String("restore", "", "resume from a snapshot written by -checkpoint (same dataset, query and plan)")
		inject    = flag.String("inject", "", "deterministic fault spec, e.g. 'panic@shard1:tuple5000' or 'delay@shard0:tuple100:2ms,burst@tuple200:64'; implies supervision")
		queries   = flag.String("queries", "", "multi-query spec file: run every listed query on one shared-window MultiJoin (see cmd/qdhjrun/multi.go for the format); with -explain, print the sharing structure instead of running")
		replan    = flag.Bool("replan", false, "online re-planning: measure rates and selectivities on the running join and live-migrate between shapes; starts from -plan (default flat)")
		replanP   = flag.Float64("replan-period", 0, "re-planning measurement period (seconds; default: the -P measurement period)")
		expLive   = flag.Bool("explain-live", false, "with -replan: print the plan graph before and after every live migration (implies -replan)")
	)
	flag.Parse()
	if *queries != "" {
		switch {
		case *tree, *pipelined, *planSpec != "", *shards > 0, *batch > 1,
			*ckptFile != "", *restore != "", *inject != "", *replan, *expLive:
			fatal(fmt.Errorf("-queries is its own deployment shape; it cannot be combined with -tree/-pipelined/-plan/-shards/-batch/-checkpoint/-restore/-inject/-replan"))
		}
		acfg := adapt.Config{
			Gamma: *gamma,
			P:     stream.Time(*periodS * float64(stream.Second)),
			L:     stream.Time(*interval * float64(stream.Second)),
		}
		if *strategy == "eqsel" {
			acfg.Strategy = adapt.EqSel
		}
		runMulti(*in, *queries, acfg, *policy, *gamma, *staticK, *explain)
		return
	}
	if *explain {
		runExplain(*in, *query, *planSpec, *shards)
		return
	}
	if *in == "" {
		flag.Usage()
		os.Exit(2)
	}
	if *tree && *pipelined {
		fatal(fmt.Errorf("-tree and -pipelined are mutually exclusive"))
	}
	if *perStage && !*tree && !*pipelined {
		fatal(fmt.Errorf("-perstage needs -tree or -pipelined"))
	}
	if *planSpec != "" && (*tree || *pipelined) {
		fatal(fmt.Errorf("-plan replaces -tree/-pipelined: express the shape in the spec instead"))
	}
	if *shards > 0 && (*tree || *pipelined) {
		fatal(fmt.Errorf("-shards does not apply to -tree/-pipelined (the Sec. V spine executors are unsharded); use -plan 'tree-shard:%d' for a stage-wise sharded tree", *shards))
	}
	f, err := os.Open(*in)
	if err != nil {
		fatal(err)
	}
	ds, err := gen.ReadCSV(f)
	f.Close()
	if err != nil {
		fatal(err)
	}
	ds.Cond = queryFor(*query, ds.M)

	acfg := adapt.Config{
		Gamma: *gamma,
		P:     stream.Time(*periodS * float64(stream.Second)),
		L:     stream.Time(*interval * float64(stream.Second)),
	}
	if *strategy == "eqsel" {
		acfg.Strategy = adapt.EqSel
	}
	var pf core.PolicyFactory
	switch *policy {
	case "model":
		pf = core.ModelPolicy()
	case "maxk":
		pf = core.MaxKPolicy()
	case "nok":
		pf = core.NoKPolicy()
	case "static":
		pf = core.StaticPolicy(stream.Time(*staticK * float64(stream.Second)))
	default:
		fatal(fmt.Errorf("unknown policy %q", *policy))
	}

	ft := ftOpts{ckptFile: *ckptFile, ckptAt: *ckptAt, restore: *restore, inject: *inject}
	if ft.active() && (*tree || *pipelined) {
		fatal(fmt.Errorf("-checkpoint/-restore/-inject run on the planned path; express the shape with -plan"))
	}
	if *expLive {
		*replan = true
	}
	rp := replanOpts{on: *replan, explainLive: *expLive,
		period: stream.Time(*replanP * float64(stream.Second))}
	if rp.on {
		if rp.period == 0 {
			rp.period = acfg.P
		}
		if *tree || *pipelined {
			fatal(fmt.Errorf("-replan runs on the planned path; express the starting shape with -plan"))
		}
		if ft.active() {
			fatal(fmt.Errorf("-replan cannot be combined with -checkpoint/-restore/-inject: the supervised runtime pins one deployment shape"))
		}
	}

	fmt.Fprintf(os.Stderr, "computing oracle ground truth...\n")
	truth := oracle.TrueResults(ds.Cond, ds.Windows, ds.Arrivals)

	if *batch > 1 && (*tree || *pipelined) {
		fatal(fmt.Errorf("-batch runs on the planned path; use -plan tree for a batched tree"))
	}
	if *planSpec != "" || *shards > 0 && !*tree && !*pipelined || ft.active() || rp.on || *batch > 1 {
		spec := *planSpec
		if spec == "" {
			spec = "auto"
			if rp.on || *batch > 1 {
				spec = "flat" // re-planning discovers the shape; -batch alone keeps the plain operator
			}
		}
		runPlanned(ds, truth, acfg, *policy, stream.Time(*staticK*float64(stream.Second)), spec, *shards, *batch, ft, rp)
		return
	}

	if *tree || *pipelined {
		runTree(ds, truth, acfg, *policy, stream.Time(*staticK*float64(stream.Second)),
			*pipelined, *perStage)
		return
	}
	eds := &exp.Dataset{Dataset: ds, Truth: truth}
	s := exp.Run(eds, acfg, pf)

	fmt.Printf("dataset:        %s (%d tuples, %d streams)\n", ds.Name, len(ds.Arrivals), ds.M)
	fmt.Printf("policy:         %s  Γ=%g  P=%v  L=%v\n", *policy, *gamma, acfg.P, acfg.L)
	fmt.Printf("produced:       %d of %d true results (overall recall %.4f)\n",
		s.Produced, s.TrueTotal, s.OverallRecall())
	fmt.Printf("avg K:          %.3f s\n", s.AvgK/1000)
	fmt.Printf("mean γ(P):      %.4f\n", s.MeanRecall)
	if s.PhiOK {
		fmt.Printf("Φ(Γ):           %.1f%%\n", s.PhiGamma)
		fmt.Printf("Φ(.99Γ):        %.1f%%\n", s.Phi99)
	}
	if s.AdaptSteps > 0 {
		fmt.Printf("adaptation:     %d steps, avg %v per step\n", s.AdaptSteps, s.AvgAdaptTime())
	}
}

// runTree replays the dataset through the binary-tree deployment (Sec. V),
// synchronous or pipelined, with fixed-K (policy "static"), Same-K-adaptive
// or per-stage-adaptive buffers, and reports recall against the oracle.
func runTree(ds *gen.Dataset, truth *oracle.Index, acfg adapt.Config, policy string,
	staticK stream.Time, pipelined, perStage bool) {
	opt := qdhj.Options{
		Gamma:    acfg.Gamma,
		Period:   acfg.P,
		Interval: acfg.L,
		Strategy: acfg.Strategy,
	}
	var opts []qdhj.TreeOption
	var initialK stream.Time
	mode := "same-k adaptive"
	switch policy {
	case "static":
		initialK = staticK
		mode = "fixed-K"
	case "maxk":
		opt.Policy = qdhj.MaxSlack
		opts = append(opts, qdhj.WithTreeAdaptation(opt))
		mode = "max-K adaptive"
	case "nok":
		opt.Policy = qdhj.NoSlack
		opts = append(opts, qdhj.WithTreeAdaptation(opt))
		mode = "no-K"
	case "model":
		opts = append(opts, qdhj.WithTreeAdaptation(opt))
	default:
		fatal(fmt.Errorf("unknown policy %q for tree execution", policy))
	}
	if perStage {
		opts = append(opts, qdhj.WithPerStageK())
		mode = "per-stage adaptive"
	}

	arrivals := ds.Arrivals.Clone()
	var produced int64
	var sumBufK float64
	var adaptations int64
	shape := "tree"
	if pipelined {
		shape = "pipelined tree"
		j := qdhj.NewPipelinedTreeJoin(ds.Cond, ds.Windows, initialK, 512, opts...)
		done := make(chan struct{})
		go func() {
			defer close(done)
			for range j.Results() {
				produced++
			}
		}()
		for _, e := range arrivals {
			j.Push(e)
		}
		j.Close()
		<-done
		j.Wait()
		sumBufK = j.BufferedDelaySum()
	} else {
		j := qdhj.NewTreeJoin(ds.Cond, ds.Windows, initialK, nil, opts...)
		for _, e := range arrivals {
			j.Push(e)
		}
		j.Close()
		produced = j.Results()
		sumBufK = j.BufferedDelaySum()
		adaptations = j.Adaptations()
		if ks := j.CurrentKs(); ks != nil {
			fmt.Fprintf(os.Stderr, "final Ks: %v\n", ks)
		}
	}

	recall := 0.0
	if truth.Total() > 0 {
		recall = float64(produced) / float64(truth.Total())
	}
	fmt.Printf("dataset:        %s (%d tuples, %d streams)\n", ds.Name, len(ds.Arrivals), ds.M)
	fmt.Printf("execution:      %s, %s  Γ=%g  P=%v  L=%v\n", shape, mode, acfg.Gamma, acfg.P, acfg.L)
	fmt.Printf("produced:       %d of %d true results (overall recall %.4f)\n",
		produced, truth.Total(), recall)
	if mode != "fixed-K" {
		fmt.Printf("buffered delay: %.3f s summed over intervals and buffers\n", sumBufK/1000)
		if adaptations > 0 {
			fmt.Printf("adaptation:     %d steps\n", adaptations)
		}
	}
}

// runExplain prints the plan graph for a query without running it; the
// dataset is optional (its arity and windows are used when present, else
// the query's natural arity with 2 s windows).
func runExplain(in, query, spec string, shards int) {
	m := 0
	windows := []stream.Time(nil)
	if in != "" {
		f, err := os.Open(in)
		if err != nil {
			fatal(err)
		}
		ds, err := gen.ReadCSV(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
		m, windows = ds.M, ds.Windows
	} else {
		switch query {
		case "x2":
			m = 2
		case "x3":
			m = 3
		case "x4":
			m = 4
		default:
			fatal(fmt.Errorf("-explain without -in needs a fixed-arity query (x2|x3|x4), got %q", query))
		}
		windows = make([]stream.Time, m)
		for i := range windows {
			windows[i] = 2 * stream.Second
		}
	}
	if spec == "" {
		spec = "auto"
	}
	p, err := qdhj.ParsePlan(spec, queryFor(query, m), windows, shards)
	if err != nil {
		fatal(err)
	}
	fmt.Print(qdhj.Explain(p))
}

// ftOpts carries the fault-tolerance flags of one run.
type ftOpts struct {
	ckptFile string
	ckptAt   int
	restore  string
	inject   string
}

func (ft ftOpts) active() bool { return ft.ckptFile != "" || ft.restore != "" || ft.inject != "" }

// writeSnapFile persists (consumed-arrival count, snapshot) — the count
// lets -restore resume the feed at the right offset.
func writeSnapFile(path string, consumed int, snap *qdhj.Snapshot) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	var hdr [8]byte
	binary.BigEndian.PutUint64(hdr[:], uint64(consumed))
	if _, err := f.Write(hdr[:]); err != nil {
		f.Close()
		return err
	}
	if err := snap.Encode(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// readSnapFile reads a -checkpoint file back.
func readSnapFile(path string) (int, *qdhj.Snapshot, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, nil, err
	}
	defer f.Close()
	var hdr [8]byte
	if _, err := f.Read(hdr[:]); err != nil {
		return 0, nil, fmt.Errorf("reading snapshot header: %w", err)
	}
	snap, err := qdhj.ReadSnapshot(f)
	if err != nil {
		return 0, nil, err
	}
	return int(binary.BigEndian.Uint64(hdr[:])), snap, nil
}

// replanOpts carries the online re-planning flags of one run.
type replanOpts struct {
	on          bool
	explainLive bool
	period      stream.Time
}

// runPlanned replays the dataset through an explicitly planned deployment
// (the NewJoin + WithPlan path) and reports recall against the oracle.
// With -checkpoint it stops partway and writes a snapshot; with -restore it
// resumes from one; with -inject it runs supervised under deterministic
// fault injection; with -replan it re-plans online and live-migrates.
func runPlanned(ds *gen.Dataset, truth *oracle.Index, acfg adapt.Config, policy string,
	staticK stream.Time, spec string, shards, batch int, ft ftOpts, rp replanOpts) {
	p, err := qdhj.ParsePlan(spec, ds.Cond, ds.Windows, shards)
	if err != nil {
		fatal(err)
	}
	fmt.Fprint(os.Stderr, qdhj.Explain(p))
	opt := qdhj.Options{
		Gamma:    acfg.Gamma,
		Period:   acfg.P,
		Interval: acfg.L,
		Strategy: acfg.Strategy,
	}
	switch policy {
	case "model":
	case "maxk":
		opt.Policy = qdhj.MaxSlack
	case "nok":
		opt.Policy = qdhj.NoSlack
	case "static":
		opt.Policy = qdhj.StaticSlack
		opt.StaticK = staticK
	default:
		fatal(fmt.Errorf("unknown policy %q for planned execution", policy))
	}
	jopts := []qdhj.JoinOption{qdhj.WithPlan(p)}
	if batch > 1 {
		jopts = append(jopts, qdhj.WithBatchSize(batch))
	}
	var migrations int
	var totalPause, maxPause time.Duration
	if rp.on {
		jopts = append(jopts, qdhj.WithOnlineReplan(qdhj.ReplanOptions{
			Hints:  qdhj.PlanHints{Shards: shards},
			Period: rp.period,
			OnMigrate: func(ev qdhj.MigrationEvent) {
				migrations++
				totalPause += ev.Pause
				if ev.Pause > maxPause {
					maxPause = ev.Pause
				}
				fmt.Fprintf(os.Stderr, "migrate: %s → %s at ts=%d (replayed %d, pause %v)\n",
					ev.From, ev.To, ev.At, ev.Replayed, ev.Pause)
				if rp.explainLive {
					fmt.Fprintf(os.Stderr, "-- before --\n%s-- after --\n%s", ev.FromExplain, ev.ToExplain)
				}
			},
		}))
	}
	if ft.inject != "" {
		inj, err := qdhj.ParseInjectSpec(ft.inject)
		if err != nil {
			fatal(err)
		}
		jopts = append(jopts,
			qdhj.WithInjector(inj),
			qdhj.WithSupervision(qdhj.Supervision{OnRestart: func(n int, cause error) {
				fmt.Fprintf(os.Stderr, "restart %d: recovered from: %v\n", n, cause)
			}}))
	}

	arrivals := ds.Arrivals.Clone()
	start := 0
	var j *qdhj.Join
	if ft.restore != "" {
		consumed, snap, err := readSnapFile(ft.restore)
		if err != nil {
			fatal(err)
		}
		j, err = qdhj.Restore(snap, ds.Cond, ds.Windows, opt, jopts...)
		if err != nil {
			fatal(err)
		}
		start = consumed
		fmt.Fprintf(os.Stderr, "restored %s at arrival %d of %d\n", ft.restore, consumed, len(arrivals))
	} else {
		j = qdhj.NewJoin(ds.Cond, ds.Windows, opt, jopts...)
	}
	ckAt := -1
	if ft.ckptFile != "" {
		ckAt = ft.ckptAt
		if ckAt <= 0 {
			ckAt = len(arrivals) / 2
		}
	}
	for i := start; i < len(arrivals); i++ {
		j.Push(arrivals[i])
		if i+1 == ckAt {
			snap, err := j.Checkpoint()
			if err != nil {
				fatal(err)
			}
			if err := writeSnapFile(ft.ckptFile, i+1, snap); err != nil {
				fatal(err)
			}
			j.Close()
			fmt.Printf("checkpoint:     %s at arrival %d of %d (signature %s)\n",
				ft.ckptFile, i+1, len(arrivals), snap.Signature())
			return
		}
	}
	j.Close()
	if err := j.Err(); err != nil {
		fatal(fmt.Errorf("join went terminal after %d restarts: %w", j.Restarts(), err))
	}

	recall := 0.0
	if truth.Total() > 0 {
		recall = float64(j.Results()) / float64(truth.Total())
	}
	fmt.Printf("dataset:        %s (%d tuples, %d streams)\n", ds.Name, len(ds.Arrivals), ds.M)
	fmt.Printf("execution:      planned (%s), %s  Γ=%g  P=%v  L=%v\n", spec, policy, acfg.Gamma, acfg.P, acfg.L)
	fmt.Printf("produced:       %d of %d true results (overall recall %.4f)\n",
		j.Results(), truth.Total(), recall)
	if n := j.Restarts(); n > 0 {
		fmt.Printf("restarts:       %d (all recovered)\n", n)
	}
	if rp.on {
		fmt.Printf("migrations:     %d (total pause %v, max %v)\n", migrations, totalPause, maxPause)
		fmt.Printf("final plan:     %s", qdhj.Explain(j.CurrentPlan()))
	}
	if ks := j.CurrentKs(); len(ks) > 0 && opt.Policy != qdhj.StaticSlack {
		fmt.Printf("final Ks:       %v (max %v)\n", ks, j.CurrentK())
		fmt.Printf("adaptation:     %d steps, avg max-K %.3f s\n", j.Adaptations(), j.AvgK()/1000)
	}
}

// queryFor attaches the query matching the dataset key.
func queryFor(q string, m int) *join.Condition {
	switch q {
	case "x2":
		thr := 5.0 * 5.0
		return join.Cross(2).Where([]int{0, 1}, func(a []*stream.Tuple) bool {
			dx := a[0].Attr(1) - a[1].Attr(1)
			dy := a[0].Attr(2) - a[1].Attr(2)
			return dx*dx+dy*dy < thr
		})
	case "x3":
		return join.EquiChain(3, 0)
	case "x4":
		return join.Star(4, []int{0, 1, 2}, []int{0, 0, 0})
	case "cross":
		return join.Cross(m)
	case "equichain":
		return join.EquiChain(m, 0)
	default:
		fatal(fmt.Errorf("unknown query %q", q))
		return nil
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
