// Command qdhjrun replays a CSV dataset (see qdhjgen) through the
// quality-driven disorder handling framework and reports result counts,
// average buffer size and recall against the oracle. Every deployment
// shape is drivable: the single MJoin-style operator (default), the
// left-deep binary tree (-tree), the pipelined tree (-pipelined), and any
// planner shape via -plan — including bushy trees and stage-wise sharding.
// -explain prints the chosen plan graph (shape, shard routes, per-stage K
// scopes) without running.
//
// Usage:
//
//	qdhjgen -dataset x3 -minutes 10 -o d.csv
//	qdhjrun -in d.csv -query x3 -gamma 0.95 -policy model
//	qdhjrun -in d.csv -query x3 -tree -perstage
//	qdhjrun -query x4 -shards 4 -explain            # what would auto pick?
//	qdhjrun -in d.csv -query x4 -plan auto -shards 4
//	qdhjrun -in d.csv -query x4 -plan '((0 1)x4 2 3)x4'
//	qdhjrun -in d.csv -query x3 -batch 64           # columnar release batches
//
// Fault tolerance (the planned path): -checkpoint writes a restorable
// snapshot partway through the feed and exits; -restore resumes a run from
// one; -inject arms the deterministic fault injector (which implies
// supervision — injected worker panics recover instead of crashing):
//
//	qdhjrun -in d.csv -query x3 -plan shard:2 -checkpoint snap.bin
//	qdhjrun -in d.csv -query x3 -plan shard:2 -restore snap.bin -inject panic@shard1:tuple5000
//
// Online re-planning: -replan measures arrival rates and selectivities on
// the running join, re-plans every -replan-period, and live-migrates
// between shapes; -explain-live additionally prints the plan graph before
// and after every migration:
//
//	qdhjgen -dataset phaseflip -minutes 2 -o flip.csv
//	qdhjrun -in flip.csv -query x4 -replan -replan-period 2 -explain-live
//
// Networked execution: -workers runs the join's partition workers as
// external qdhjd daemons (one address per shard; results and K trajectory
// are bit-for-bit equal to the in-process run); -framebatch tunes how many
// tuple messages share one wire frame. Fault injection on a networked run
// is armed on the daemons (qdhjd -inject), not here: -workers -inject is a
// flag conflict.
//
//	qdhjd -listen 127.0.0.1:7101 & qdhjd -listen 127.0.0.1:7102 &
//	qdhjrun -in d.csv -query x3 -workers 127.0.0.1:7101,127.0.0.1:7102
//
// Invalid flag combinations exit with code 2 and an error wrapping
// errFlagConflict; see flagConflict for the full compatibility matrix.
package main

import (
	"encoding/binary"
	"errors"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	qdhj "repro"
	"repro/internal/adapt"
	"repro/internal/core"
	"repro/internal/exp"
	"repro/internal/gen"
	"repro/internal/join"
	"repro/internal/oracle"
	"repro/internal/stream"
)

func main() {
	var (
		in        = flag.String("in", "", "input CSV (from qdhjgen); required")
		query     = flag.String("query", "x3", "query: x2|x3|x4|cross|equichain")
		gamma     = flag.Float64("gamma", 0.95, "recall requirement Γ")
		periodS   = flag.Float64("P", 60, "measurement period P (seconds)")
		interval  = flag.Float64("L", 1, "adaptation interval L (seconds)")
		policy    = flag.String("policy", "model", "policy: model|maxk|nok|static")
		staticK   = flag.Float64("k", 0, "buffer size for -policy static (seconds)")
		strategy  = flag.String("strategy", "noneqsel", "selectivity strategy: eqsel|noneqsel")
		tree      = flag.Bool("tree", false, "execute as a left-deep binary tree (Sec. V) instead of the single operator")
		pipelined = flag.Bool("pipelined", false, "execute as the pipelined binary tree (one goroutine per stage)")
		perStage  = flag.Bool("perstage", false, "with -tree/-pipelined: one adaptive K per binary stage instead of Same-K")
		shards    = flag.Int("shards", 0, "shard budget: parallel workers for the planner / sharded operator")
		batch     = flag.Int("batch", 0, "columnar release batch size (0 or 1 = per-tuple); results and K trajectory are bit-for-bit identical at any size")
		planSpec  = flag.String("plan", "", "deployment plan spec: auto|flat|shard[:N]|tree|tree-shard[:N] or a shape s-expression like '((0 1)x4 2)x4'")
		explain   = flag.Bool("explain", false, "print the plan graph (shape, shard routes, per-stage K scopes) and exit; works without -in")
		ckptFile  = flag.String("checkpoint", "", "write a snapshot to this file after -checkpoint-at arrivals and exit")
		ckptAt    = flag.Int("checkpoint-at", 0, "arrival count to checkpoint at (default: half the feed)")
		restore   = flag.String("restore", "", "resume from a snapshot written by -checkpoint (same dataset, query and plan)")
		inject    = flag.String("inject", "", "deterministic fault spec, e.g. 'panic@shard1:tuple5000' or 'delay@shard0:tuple100:2ms,burst@tuple200:64'; implies supervision")
		queries   = flag.String("queries", "", "multi-query spec file: run every listed query on one shared-window MultiJoin (see cmd/qdhjrun/multi.go for the format); with -explain, print the sharing structure instead of running")
		replan    = flag.Bool("replan", false, "online re-planning: measure rates and selectivities on the running join and live-migrate between shapes; starts from -plan (default flat)")
		replanP   = flag.Float64("replan-period", 0, "re-planning measurement period (seconds; default: the -P measurement period)")
		expLive   = flag.Bool("explain-live", false, "with -replan: print the plan graph before and after every live migration (implies -replan)")
		workersCS = flag.String("workers", "", "comma-separated qdhjd worker addresses: run the join's partition workers as external daemons, one per shard")
		frameB    = flag.Int("framebatch", 0, "with -workers: tuple messages per wire frame (0 = default 128; 1 = per-tuple framing); results are identical at any size")
	)
	flag.Parse()
	workers := splitAddrs(*workersCS)
	fl := runFlags{
		tree: *tree, pipelined: *pipelined, perStage: *perStage,
		planSpec: *planSpec, shards: *shards, batch: *batch,
		ckptFile: *ckptFile, restore: *restore, inject: *inject,
		queries: *queries, workers: workers, frameBatch: *frameB,
		replan: *replan, explainLive: *expLive,
	}
	if err := flagConflict(fl); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if *queries != "" {
		acfg := adapt.Config{
			Gamma: *gamma,
			P:     stream.Time(*periodS * float64(stream.Second)),
			L:     stream.Time(*interval * float64(stream.Second)),
		}
		if *strategy == "eqsel" {
			acfg.Strategy = adapt.EqSel
		}
		runMulti(*in, *queries, acfg, *policy, *gamma, *staticK, *explain)
		return
	}
	if *explain {
		runExplain(*in, *query, *planSpec, *shards)
		return
	}
	if *in == "" {
		flag.Usage()
		os.Exit(2)
	}
	f, err := os.Open(*in)
	if err != nil {
		fatal(err)
	}
	ds, err := gen.ReadCSV(f)
	f.Close()
	if err != nil {
		fatal(err)
	}
	ds.Cond = queryFor(*query, ds.M)

	acfg := adapt.Config{
		Gamma: *gamma,
		P:     stream.Time(*periodS * float64(stream.Second)),
		L:     stream.Time(*interval * float64(stream.Second)),
	}
	if *strategy == "eqsel" {
		acfg.Strategy = adapt.EqSel
	}
	var pf core.PolicyFactory
	switch *policy {
	case "model":
		pf = core.ModelPolicy()
	case "maxk":
		pf = core.MaxKPolicy()
	case "nok":
		pf = core.NoKPolicy()
	case "static":
		pf = core.StaticPolicy(stream.Time(*staticK * float64(stream.Second)))
	default:
		fatal(fmt.Errorf("unknown policy %q", *policy))
	}

	ft := ftOpts{ckptFile: *ckptFile, ckptAt: *ckptAt, restore: *restore, inject: *inject}
	if *expLive {
		*replan = true
	}
	rp := replanOpts{on: *replan, explainLive: *expLive,
		period: stream.Time(*replanP * float64(stream.Second))}
	if rp.on && rp.period == 0 {
		rp.period = acfg.P
	}

	fmt.Fprintf(os.Stderr, "computing oracle ground truth...\n")
	truth := oracle.TrueResults(ds.Cond, ds.Windows, ds.Arrivals)

	if *planSpec != "" || *shards > 0 && !*tree && !*pipelined || ft.active() || rp.on || *batch > 1 || len(workers) > 0 {
		spec := *planSpec
		if spec == "" {
			spec = "auto"
			switch {
			case len(workers) > 0:
				// One worker address per shard: remote workers pin the
				// sharded flat shape at the address count.
				spec = fmt.Sprintf("shard:%d", len(workers))
			case rp.on || *batch > 1:
				spec = "flat" // re-planning discovers the shape; -batch alone keeps the plain operator
			}
		}
		runPlanned(ds, truth, acfg, *policy, stream.Time(*staticK*float64(stream.Second)), spec, *shards, *batch, workers, *frameB, ft, rp)
		return
	}

	if *tree || *pipelined {
		runTree(ds, truth, acfg, *policy, stream.Time(*staticK*float64(stream.Second)),
			*pipelined, *perStage)
		return
	}
	eds := &exp.Dataset{Dataset: ds, Truth: truth}
	s := exp.Run(eds, acfg, pf)

	fmt.Printf("dataset:        %s (%d tuples, %d streams)\n", ds.Name, len(ds.Arrivals), ds.M)
	fmt.Printf("policy:         %s  Γ=%g  P=%v  L=%v\n", *policy, *gamma, acfg.P, acfg.L)
	fmt.Printf("produced:       %d of %d true results (overall recall %.4f)\n",
		s.Produced, s.TrueTotal, s.OverallRecall())
	fmt.Printf("avg K:          %.3f s\n", s.AvgK/1000)
	fmt.Printf("mean γ(P):      %.4f\n", s.MeanRecall)
	if s.PhiOK {
		fmt.Printf("Φ(Γ):           %.1f%%\n", s.PhiGamma)
		fmt.Printf("Φ(.99Γ):        %.1f%%\n", s.Phi99)
	}
	if s.AdaptSteps > 0 {
		fmt.Printf("adaptation:     %d steps, avg %v per step\n", s.AdaptSteps, s.AvgAdaptTime())
	}
}

// runTree replays the dataset through the binary-tree deployment (Sec. V),
// synchronous or pipelined, with fixed-K (policy "static"), Same-K-adaptive
// or per-stage-adaptive buffers, and reports recall against the oracle.
func runTree(ds *gen.Dataset, truth *oracle.Index, acfg adapt.Config, policy string,
	staticK stream.Time, pipelined, perStage bool) {
	opt := qdhj.Options{
		Gamma:    acfg.Gamma,
		Period:   acfg.P,
		Interval: acfg.L,
		Strategy: acfg.Strategy,
	}
	var opts []qdhj.TreeOption
	var initialK stream.Time
	mode := "same-k adaptive"
	switch policy {
	case "static":
		initialK = staticK
		mode = "fixed-K"
	case "maxk":
		opt.Policy = qdhj.MaxSlack
		opts = append(opts, qdhj.WithTreeAdaptation(opt))
		mode = "max-K adaptive"
	case "nok":
		opt.Policy = qdhj.NoSlack
		opts = append(opts, qdhj.WithTreeAdaptation(opt))
		mode = "no-K"
	case "model":
		opts = append(opts, qdhj.WithTreeAdaptation(opt))
	default:
		fatal(fmt.Errorf("unknown policy %q for tree execution", policy))
	}
	if perStage {
		opts = append(opts, qdhj.WithPerStageK())
		mode = "per-stage adaptive"
	}

	arrivals := ds.Arrivals.Clone()
	var produced int64
	var sumBufK float64
	var adaptations int64
	shape := "tree"
	if pipelined {
		shape = "pipelined tree"
		j := qdhj.NewPipelinedTreeJoin(ds.Cond, ds.Windows, initialK, 512, opts...)
		done := make(chan struct{})
		go func() {
			defer close(done)
			for range j.Results() {
				produced++
			}
		}()
		for _, e := range arrivals {
			j.Push(e)
		}
		j.Close()
		<-done
		j.Wait()
		sumBufK = j.BufferedDelaySum()
	} else {
		j := qdhj.NewTreeJoin(ds.Cond, ds.Windows, initialK, nil, opts...)
		for _, e := range arrivals {
			j.Push(e)
		}
		j.Close()
		produced = j.Results()
		sumBufK = j.BufferedDelaySum()
		adaptations = j.Adaptations()
		if ks := j.CurrentKs(); ks != nil {
			fmt.Fprintf(os.Stderr, "final Ks: %v\n", ks)
		}
	}

	recall := 0.0
	if truth.Total() > 0 {
		recall = float64(produced) / float64(truth.Total())
	}
	fmt.Printf("dataset:        %s (%d tuples, %d streams)\n", ds.Name, len(ds.Arrivals), ds.M)
	fmt.Printf("execution:      %s, %s  Γ=%g  P=%v  L=%v\n", shape, mode, acfg.Gamma, acfg.P, acfg.L)
	fmt.Printf("produced:       %d of %d true results (overall recall %.4f)\n",
		produced, truth.Total(), recall)
	if mode != "fixed-K" {
		fmt.Printf("buffered delay: %.3f s summed over intervals and buffers\n", sumBufK/1000)
		if adaptations > 0 {
			fmt.Printf("adaptation:     %d steps\n", adaptations)
		}
	}
}

// runExplain prints the plan graph for a query without running it; the
// dataset is optional (its arity and windows are used when present, else
// the query's natural arity with 2 s windows).
func runExplain(in, query, spec string, shards int) {
	m := 0
	windows := []stream.Time(nil)
	if in != "" {
		f, err := os.Open(in)
		if err != nil {
			fatal(err)
		}
		ds, err := gen.ReadCSV(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
		m, windows = ds.M, ds.Windows
	} else {
		switch query {
		case "x2":
			m = 2
		case "x3":
			m = 3
		case "x4":
			m = 4
		default:
			fatal(fmt.Errorf("-explain without -in needs a fixed-arity query (x2|x3|x4), got %q", query))
		}
		windows = make([]stream.Time, m)
		for i := range windows {
			windows[i] = 2 * stream.Second
		}
	}
	if spec == "" {
		spec = "auto"
	}
	p, err := qdhj.ParsePlan(spec, queryFor(query, m), windows, shards)
	if err != nil {
		fatal(err)
	}
	fmt.Print(qdhj.Explain(p))
}

// errFlagConflict is the documented typed error behind every invalid flag
// combination: qdhjrun prints an error chain that errors.Is(err,
// errFlagConflict) recognizes and exits with code 2. flagConflict is the
// full compatibility matrix; main_test.go pins it.
var errFlagConflict = errors.New("conflicting flags")

func conflict(msg string) error {
	return fmt.Errorf("qdhjrun: %w: %s", errFlagConflict, msg)
}

// runFlags mirrors the deployment-shaping command line for conflict
// checking.
type runFlags struct {
	tree, pipelined, perStage bool
	planSpec                  string
	shards, batch             int
	ckptFile, restore, inject string
	queries                   string
	workers                   []string
	frameBatch                int
	replan, explainLive       bool
}

// flagConflict validates one flag combination and returns the first
// conflict found (wrapping errFlagConflict), or nil.
//
// The -queries × -inject rule deserves its history: the two flags used to
// compose silently, but fault injection is not wired through the
// shared-window multi-query engine — MultiJoin.Push never consults an
// injector, so the armed faults would simply never fire and the run would
// masquerade as a passed recovery test. The combination is now a
// documented error; arm faults on a single-query deployment, or on the
// daemons (qdhjd -inject) for networked runs.
func flagConflict(f runFlags) error {
	if f.queries != "" {
		if f.inject != "" {
			return conflict("-queries cannot be combined with -inject: fault injection is not wired through the shared-window multi-query engine, so the armed faults would never fire; inject on a single-query run, or on qdhjd -inject for networked runs")
		}
		if f.tree || f.pipelined || f.planSpec != "" || f.shards > 0 || f.batch > 1 ||
			f.ckptFile != "" || f.restore != "" || len(f.workers) > 0 || f.replan || f.explainLive {
			return conflict("-queries is its own deployment shape; it cannot be combined with -tree/-pipelined/-plan/-shards/-batch/-checkpoint/-restore/-workers/-replan")
		}
		return nil
	}
	if f.tree && f.pipelined {
		return conflict("-tree and -pipelined are mutually exclusive")
	}
	if f.perStage && !f.tree && !f.pipelined {
		return conflict("-perstage needs -tree or -pipelined")
	}
	if f.planSpec != "" && (f.tree || f.pipelined) {
		return conflict("-plan replaces -tree/-pipelined: express the shape in the spec instead")
	}
	if f.shards > 0 && (f.tree || f.pipelined) {
		return conflict(fmt.Sprintf("-shards does not apply to -tree/-pipelined (the Sec. V spine executors are unsharded); use -plan 'tree-shard:%d' for a stage-wise sharded tree", f.shards))
	}
	ftActive := f.ckptFile != "" || f.restore != "" || f.inject != ""
	if ftActive && (f.tree || f.pipelined) {
		return conflict("-checkpoint/-restore/-inject run on the planned path; express the shape with -plan")
	}
	if f.batch > 1 && (f.tree || f.pipelined) {
		return conflict("-batch runs on the planned path; use -plan tree for a batched tree")
	}
	if f.replan || f.explainLive {
		if f.tree || f.pipelined {
			return conflict("-replan runs on the planned path; express the starting shape with -plan")
		}
		if ftActive {
			return conflict("-replan cannot be combined with -checkpoint/-restore/-inject: the supervised runtime pins one deployment shape")
		}
		if len(f.workers) > 0 {
			return conflict("-workers cannot be combined with -replan: remote workers pin the sharded flat shape, and a live migration would change it")
		}
	}
	if len(f.workers) > 0 {
		if f.tree || f.pipelined {
			return conflict("-workers runs the sharded flat shape on external daemons; tree shapes do not deploy remotely")
		}
		if f.inject != "" {
			return conflict("-workers cannot be combined with -inject: driver-side injection never reaches a remote worker process; arm the fault on the daemon instead (qdhjd -inject)")
		}
		if f.shards > 0 && f.shards != len(f.workers) {
			return conflict(fmt.Sprintf("-shards %d disagrees with %d -workers addresses (one worker per shard)", f.shards, len(f.workers)))
		}
	}
	if f.frameBatch > 0 && len(f.workers) == 0 {
		return conflict("-framebatch tunes the wire framing of a networked run; it needs -workers")
	}
	return nil
}

// splitAddrs parses the -workers list.
func splitAddrs(s string) []string {
	var out []string
	for _, a := range strings.Split(s, ",") {
		if a = strings.TrimSpace(a); a != "" {
			out = append(out, a)
		}
	}
	return out
}

// ftOpts carries the fault-tolerance flags of one run.
type ftOpts struct {
	ckptFile string
	ckptAt   int
	restore  string
	inject   string
}

func (ft ftOpts) active() bool { return ft.ckptFile != "" || ft.restore != "" || ft.inject != "" }

// writeSnapFile persists (consumed-arrival count, snapshot) — the count
// lets -restore resume the feed at the right offset.
func writeSnapFile(path string, consumed int, snap *qdhj.Snapshot) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	var hdr [8]byte
	binary.BigEndian.PutUint64(hdr[:], uint64(consumed))
	if _, err := f.Write(hdr[:]); err != nil {
		f.Close()
		return err
	}
	if err := snap.Encode(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// readSnapFile reads a -checkpoint file back.
func readSnapFile(path string) (int, *qdhj.Snapshot, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, nil, err
	}
	defer f.Close()
	var hdr [8]byte
	if _, err := f.Read(hdr[:]); err != nil {
		return 0, nil, fmt.Errorf("reading snapshot header: %w", err)
	}
	snap, err := qdhj.ReadSnapshot(f)
	if err != nil {
		return 0, nil, err
	}
	return int(binary.BigEndian.Uint64(hdr[:])), snap, nil
}

// replanOpts carries the online re-planning flags of one run.
type replanOpts struct {
	on          bool
	explainLive bool
	period      stream.Time
}

// runPlanned replays the dataset through an explicitly planned deployment
// (the NewJoin + WithPlan path) and reports recall against the oracle.
// With -checkpoint it stops partway and writes a snapshot; with -restore it
// resumes from one; with -inject it runs supervised under deterministic
// fault injection; with -replan it re-plans online and live-migrates.
func runPlanned(ds *gen.Dataset, truth *oracle.Index, acfg adapt.Config, policy string,
	staticK stream.Time, spec string, shards, batch int, workers []string, frameBatch int,
	ft ftOpts, rp replanOpts) {
	p, err := qdhj.ParsePlan(spec, ds.Cond, ds.Windows, shards)
	if err != nil {
		fatal(err)
	}
	fmt.Fprint(os.Stderr, qdhj.Explain(p))
	opt := qdhj.Options{
		Gamma:    acfg.Gamma,
		Period:   acfg.P,
		Interval: acfg.L,
		Strategy: acfg.Strategy,
	}
	switch policy {
	case "model":
	case "maxk":
		opt.Policy = qdhj.MaxSlack
	case "nok":
		opt.Policy = qdhj.NoSlack
	case "static":
		opt.Policy = qdhj.StaticSlack
		opt.StaticK = staticK
	default:
		fatal(fmt.Errorf("unknown policy %q for planned execution", policy))
	}
	jopts := []qdhj.JoinOption{qdhj.WithPlan(p)}
	if batch > 1 {
		jopts = append(jopts, qdhj.WithBatchSize(batch))
	}
	if len(workers) > 0 {
		jopts = append(jopts, qdhj.WithRemoteWorkers(workers...))
		if frameBatch > 0 {
			jopts = append(jopts, qdhj.WithFrameBatch(frameBatch))
		}
		fmt.Fprintf(os.Stderr, "networked: %d workers (%s)\n", len(workers), strings.Join(workers, ", "))
		if ft.ckptFile == "" && ft.restore == "" {
			// Worker loss without supervision would panic the driver;
			// a networked run defaults to the supervised runtime so a
			// restarted daemon is re-dialed and restored automatically.
			jopts = append(jopts, qdhj.WithSupervision(qdhj.Supervision{
				OnRestart: func(n int, cause error) {
					fmt.Fprintf(os.Stderr, "restart %d: recovered from: %v\n", n, cause)
				}}))
		}
	}
	var migrations int
	var totalPause, maxPause time.Duration
	if rp.on {
		jopts = append(jopts, qdhj.WithOnlineReplan(qdhj.ReplanOptions{
			Hints:  qdhj.PlanHints{Shards: shards},
			Period: rp.period,
			OnMigrate: func(ev qdhj.MigrationEvent) {
				migrations++
				totalPause += ev.Pause
				if ev.Pause > maxPause {
					maxPause = ev.Pause
				}
				fmt.Fprintf(os.Stderr, "migrate: %s → %s at ts=%d (replayed %d, pause %v)\n",
					ev.From, ev.To, ev.At, ev.Replayed, ev.Pause)
				if rp.explainLive {
					fmt.Fprintf(os.Stderr, "-- before --\n%s-- after --\n%s", ev.FromExplain, ev.ToExplain)
				}
			},
		}))
	}
	if ft.inject != "" {
		inj, err := qdhj.ParseInjectSpec(ft.inject)
		if err != nil {
			fatal(err)
		}
		jopts = append(jopts,
			qdhj.WithInjector(inj),
			qdhj.WithSupervision(qdhj.Supervision{OnRestart: func(n int, cause error) {
				fmt.Fprintf(os.Stderr, "restart %d: recovered from: %v\n", n, cause)
			}}))
	}

	arrivals := ds.Arrivals.Clone()
	start := 0
	var j *qdhj.Join
	if ft.restore != "" {
		consumed, snap, err := readSnapFile(ft.restore)
		if err != nil {
			fatal(err)
		}
		j, err = qdhj.Restore(snap, ds.Cond, ds.Windows, opt, jopts...)
		if err != nil {
			fatal(err)
		}
		start = consumed
		fmt.Fprintf(os.Stderr, "restored %s at arrival %d of %d\n", ft.restore, consumed, len(arrivals))
	} else {
		j = qdhj.NewJoin(ds.Cond, ds.Windows, opt, jopts...)
	}
	ckAt := -1
	if ft.ckptFile != "" {
		ckAt = ft.ckptAt
		if ckAt <= 0 {
			ckAt = len(arrivals) / 2
		}
	}
	for i := start; i < len(arrivals); i++ {
		j.Push(arrivals[i])
		if i+1 == ckAt {
			snap, err := j.Checkpoint()
			if err != nil {
				fatal(err)
			}
			if err := writeSnapFile(ft.ckptFile, i+1, snap); err != nil {
				fatal(err)
			}
			j.Close()
			fmt.Printf("checkpoint:     %s at arrival %d of %d (signature %s)\n",
				ft.ckptFile, i+1, len(arrivals), snap.Signature())
			return
		}
	}
	j.Close()
	if err := j.Err(); err != nil {
		fatal(fmt.Errorf("join went terminal after %d restarts: %w", j.Restarts(), err))
	}

	recall := 0.0
	if truth.Total() > 0 {
		recall = float64(j.Results()) / float64(truth.Total())
	}
	fmt.Printf("dataset:        %s (%d tuples, %d streams)\n", ds.Name, len(ds.Arrivals), ds.M)
	fmt.Printf("execution:      planned (%s), %s  Γ=%g  P=%v  L=%v\n", spec, policy, acfg.Gamma, acfg.P, acfg.L)
	fmt.Printf("produced:       %d of %d true results (overall recall %.4f)\n",
		j.Results(), truth.Total(), recall)
	if n := j.Restarts(); n > 0 {
		fmt.Printf("restarts:       %d (all recovered)\n", n)
	}
	if rp.on {
		fmt.Printf("migrations:     %d (total pause %v, max %v)\n", migrations, totalPause, maxPause)
		fmt.Printf("final plan:     %s", qdhj.Explain(j.CurrentPlan()))
	}
	if ks := j.CurrentKs(); len(ks) > 0 && opt.Policy != qdhj.StaticSlack {
		fmt.Printf("final Ks:       %v (max %v)\n", ks, j.CurrentK())
		fmt.Printf("adaptation:     %d steps, avg max-K %.3f s\n", j.Adaptations(), j.AvgK()/1000)
	}
}

// queryFor attaches the query matching the dataset key.
func queryFor(q string, m int) *join.Condition {
	switch q {
	case "x2":
		thr := 5.0 * 5.0
		return join.Cross(2).Where([]int{0, 1}, func(a []*stream.Tuple) bool {
			dx := a[0].Attr(1) - a[1].Attr(1)
			dy := a[0].Attr(2) - a[1].Attr(2)
			return dx*dx+dy*dy < thr
		})
	case "x3":
		return join.EquiChain(3, 0)
	case "x4":
		return join.Star(4, []int{0, 1, 2}, []int{0, 0, 0})
	case "cross":
		return join.Cross(m)
	case "equichain":
		return join.EquiChain(m, 0)
	default:
		fatal(fmt.Errorf("unknown query %q", q))
		return nil
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
