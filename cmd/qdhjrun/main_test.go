package main

// Pins the documented typed error for invalid flag combinations —
// most importantly -queries × -inject, which used to compose silently
// while the armed faults never fired (fault injection is not wired
// through the shared-window multi-query engine).

import (
	"errors"
	"testing"
)

func TestFlagConflicts(t *testing.T) {
	two := []string{"127.0.0.1:7101", "127.0.0.1:7102"}
	bad := []struct {
		name string
		f    runFlags
	}{
		{"queries+inject", runFlags{queries: "q.spec", inject: "panic@shard0:tuple10"}},
		{"queries+tree", runFlags{queries: "q.spec", tree: true}},
		{"queries+workers", runFlags{queries: "q.spec", workers: two}},
		{"queries+replan", runFlags{queries: "q.spec", replan: true}},
		{"tree+pipelined", runFlags{tree: true, pipelined: true}},
		{"perstage alone", runFlags{perStage: true}},
		{"plan+tree", runFlags{planSpec: "shard:2", tree: true}},
		{"shards+tree", runFlags{shards: 2, tree: true}},
		{"inject+tree", runFlags{inject: "panic@shard0:tuple10", tree: true}},
		{"batch+tree", runFlags{batch: 64, tree: true}},
		{"replan+inject", runFlags{replan: true, inject: "panic@shard0:tuple10"}},
		{"workers+inject", runFlags{workers: two, inject: "panic@shard0:tuple10"}},
		{"workers+replan", runFlags{workers: two, replan: true}},
		{"workers+tree", runFlags{workers: two, tree: true}},
		{"workers+shards mismatch", runFlags{workers: two, shards: 4}},
		{"framebatch alone", runFlags{frameBatch: 64}},
	}
	for _, tc := range bad {
		err := flagConflict(tc.f)
		if err == nil {
			t.Errorf("%s: no error", tc.name)
			continue
		}
		if !errors.Is(err, errFlagConflict) {
			t.Errorf("%s: error %v does not wrap errFlagConflict", tc.name, err)
		}
	}

	good := []struct {
		name string
		f    runFlags
	}{
		{"bare", runFlags{}},
		{"queries alone", runFlags{queries: "q.spec"}},
		{"tree+perstage", runFlags{tree: true, perStage: true}},
		{"plan+inject", runFlags{planSpec: "shard:2", inject: "panic@shard1:tuple5000"}},
		{"workers alone", runFlags{workers: two}},
		{"workers+matching shards", runFlags{workers: two, shards: 2}},
		{"workers+framebatch", runFlags{workers: two, frameBatch: 64}},
		{"workers+checkpoint", runFlags{workers: two, ckptFile: "snap.bin"}},
		{"replan alone", runFlags{replan: true}},
	}
	for _, tc := range good {
		if err := flagConflict(tc.f); err != nil {
			t.Errorf("%s: unexpected conflict: %v", tc.name, err)
		}
	}
}

func TestSplitAddrs(t *testing.T) {
	got := splitAddrs(" a:1, b:2 ,,c:3 ")
	want := []string{"a:1", "b:2", "c:3"}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
	if splitAddrs("") != nil {
		t.Fatal("empty list should be nil")
	}
}
