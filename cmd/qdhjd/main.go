// Command qdhjd is the networked join worker daemon: it holds one shard of
// one logical m-way sliding-window join on behalf of a driver process (a
// qdhj application using WithRemoteWorkers, or qdhjrun -workers). The
// driver ships the join definition in its hello, streams batched binary
// tuple frames, and collects per-interval statistics and results at
// barrier round-trips; qdhjd itself is stateless across sessions except
// for the pinned deployment signature, which protects a worker slot from
// being restored into by the wrong driver.
//
// Usage:
//
//	qdhjd -listen 127.0.0.1:7101
//	qdhjd -listen 127.0.0.1:7102 -inject panic@shard1:tuple5000
//
// Sessions are served sequentially: a worker owns mutable window state, so
// concurrent drivers are refused by construction. When a driver vanishes
// (connection drop), the session ends and the daemon accepts the next —
// typically the supervised driver's reconnect, which restores the shard's
// windows from the driver-side checkpoint.
//
// -inject arms the deterministic fault injector on this worker: "tuple N"
// counts probe messages processed by this daemon, so an injected panic
// fires at the same logical point on every run. The panic is contained —
// the worker flips to drain mode and keeps acknowledging barriers — and
// surfaces on the driver as a typed worker error at the next boundary.
package main

import (
	"flag"
	"fmt"
	"log"
	stdnet "net"
	"os"

	"repro/internal/fault"
	qnet "repro/internal/net"
)

func main() {
	var (
		listen = flag.String("listen", "127.0.0.1:7101", "address to listen on")
		inject = flag.String("inject", "", "fault injection spec, e.g. panic@shard0:tuple5000 (worker index must match this daemon's hello)")
		quiet  = flag.Bool("quiet", false, "suppress session lifecycle logging")
	)
	flag.Parse()

	var inj *fault.Injector
	if *inject != "" {
		var err error
		inj, err = fault.ParseInjectSpec(*inject)
		if err != nil {
			fmt.Fprintf(os.Stderr, "qdhjd: %v\n", err)
			os.Exit(2)
		}
	}

	l, err := stdnet.Listen("tcp", *listen)
	if err != nil {
		fmt.Fprintf(os.Stderr, "qdhjd: %v\n", err)
		os.Exit(1)
	}
	logf := log.Printf
	if *quiet {
		logf = func(string, ...any) {}
	}
	logf("qdhjd: listening on %s", l.Addr())
	if err := qnet.Serve(l, qnet.ServeConfig{Inject: inj, Logf: logf}); err != nil {
		fmt.Fprintf(os.Stderr, "qdhjd: %v\n", err)
		os.Exit(1)
	}
}
