package qdhj

// End-to-end online re-planning through the public API: the dense↔sparse
// phase-flipping star workload must make the live plan switch shapes at
// each phase change while the delivered result multiset stays exactly the
// uninterrupted reference's.

import (
	"fmt"
	"sort"
	"strings"
	"testing"

	"repro/internal/gen"
	"repro/internal/leakcheck"
)

func replanStarCond() *Condition { return Star(4, []int{0, 1, 2}, []int{0, 0, 0}) }

func replanSig(r Result) string {
	parts := make([]string, len(r.Tuples))
	for i, t := range r.Tuples {
		parts[i] = fmt.Sprintf("%d:%d", t.Src, t.Seq)
	}
	sort.Strings(parts)
	return strings.Join(parts, ",")
}

// TestOnlineReplanPhaseFlip drives WithOnlineReplan over the phase-flipping
// star: the plan must migrate at least once per phase change, in both
// directions, delivering the exact reference multiset.
func TestOnlineReplanPhaseFlip(t *testing.T) {
	leakcheck.Check(t)
	in := gen.PhaseFlipStar4(4, 500, 23, 12, 600, 200)
	maxD, _ := in.MaxDelay()
	w := []Time{600, 600, 600, 600}
	opt := Options{Policy: StaticSlack, StaticK: maxD}

	want := map[string]int{}
	ref := NewJoin(replanStarCond(), w, opt,
		WithResults(func(r Result) { want[replanSig(r)]++ }))
	for _, e := range in.Clone() {
		ref.Push(e)
	}
	ref.Close()

	got := map[string]int{}
	var events []MigrationEvent
	j := NewJoin(replanStarCond(), w, opt,
		WithResults(func(r Result) { got[replanSig(r)]++ }),
		WithOnlineReplan(ReplanOptions{
			Period: 2000, MinDwell: 3000, Improvement: 1.2,
			OnMigrate: func(ev MigrationEvent) { events = append(events, ev) },
		}))
	startShape := j.CurrentPlan().Explain()
	for _, e := range in {
		j.Push(e)
	}
	j.Close()

	if j.Migrations() < 3 {
		t.Fatalf("3 phase changes, %d migrations — the live plan must switch shapes at least once per change", j.Migrations())
	}
	if len(events) != j.Migrations() {
		t.Fatalf("OnMigrate observed %d events, Migrations() says %d", len(events), j.Migrations())
	}
	var toTree, toFlat bool
	for i, ev := range events {
		if ev.From == ev.To || ev.FromExplain == "" || ev.ToExplain == "" {
			t.Fatalf("event %d incomplete: %+v", i, ev)
		}
		if ev.From == "flat4" {
			toTree = true
		}
		if ev.To == "flat4" {
			toFlat = true
		}
	}
	if !toTree || !toFlat {
		t.Fatalf("want shape switches in both directions, got toTree=%v toFlat=%v", toTree, toFlat)
	}
	if cur := j.CurrentPlan().Explain(); cur == startShape {
		t.Fatalf("CurrentPlan still explains the initial deployment after %d migrations", j.Migrations())
	}

	if len(got) != len(want) {
		t.Fatalf("replanning run delivered %d distinct results, reference %d", len(got), len(want))
	}
	for k, n := range want {
		if got[k] != n {
			t.Fatalf("result %s delivered ×%d, want ×%d", k, got[k], n)
		}
	}
	if j.Results() != int64(len(want)) {
		t.Fatalf("Results() = %d across migrations, want the gate-delivered %d", j.Results(), len(want))
	}
}

// TestOnlineReplanAdaptive runs the full quality-driven policy under
// re-planning: the loop state transplants across shapes, so adaptations
// keep firing and no result is delivered twice.
func TestOnlineReplanAdaptive(t *testing.T) {
	leakcheck.Check(t)
	in := gen.PhaseFlipStar4(4, 500, 31, 12, 600, 200)
	w := []Time{600, 600, 600, 600}

	maxD, _ := in.MaxDelay()
	want := map[string]int{}
	ref := NewJoin(replanStarCond(), w, Options{Policy: StaticSlack, StaticK: maxD},
		WithResults(func(r Result) { want[replanSig(r)]++ }))
	for _, e := range in.Clone() {
		ref.Push(e)
	}
	ref.Close()

	got := map[string]int{}
	j := NewJoin(replanStarCond(), w,
		Options{Gamma: 0.9, Period: 4000, Interval: 1000},
		WithResults(func(r Result) { got[replanSig(r)]++ }),
		WithOnlineReplan(ReplanOptions{Period: 2000, MinDwell: 3000, Improvement: 1.2}))
	for _, e := range in {
		j.Push(e)
	}
	j.Close()

	if j.Migrations() == 0 {
		t.Fatal("adaptive phase-flipping run never migrated")
	}
	if j.Adaptations() == 0 {
		t.Fatal("no adaptation steps across migrations — loop transplant lost")
	}
	for k, n := range got {
		if n > want[k] {
			t.Fatalf("result %s delivered ×%d, full-coverage reference has ×%d — duplicate or spurious", k, n, want[k])
		}
	}
	if len(got) == 0 {
		t.Fatal("adaptive replanning run delivered nothing")
	}
}

// TestOnlineReplanRunChannel: the channel front-end keeps delivering across
// migrations (the gate's inner sink survives executor replacement).
func TestOnlineReplanRunChannel(t *testing.T) {
	leakcheck.Check(t)
	in := gen.PhaseFlipStar4(2, 500, 47, 12, 600, 100)
	maxD, _ := in.MaxDelay()
	w := []Time{600, 600, 600, 600}
	j := NewJoin(replanStarCond(), w, Options{Policy: StaticSlack, StaticK: maxD},
		WithOnlineReplan(ReplanOptions{Period: 2000, MinDwell: 2000, Improvement: 1.2}))
	ch := make(chan *Tuple)
	out := j.RunChannel(ch)
	done := make(chan int64)
	go func() {
		var n int64
		for range out {
			n++
		}
		done <- n
	}()
	for _, e := range in {
		ch <- e
	}
	close(ch)
	n := <-done
	if j.Migrations() == 0 {
		t.Fatal("dense→sparse flip never migrated")
	}
	if n == 0 || n != j.Results() {
		t.Fatalf("channel delivered %d results, gate counted %d", n, j.Results())
	}
}

// TestOnlineReplanRejectsSupervision: the two runtimes are exclusive.
func TestOnlineReplanRejectsSupervision(t *testing.T) {
	leakcheck.Check(t)
	defer func() {
		if recover() == nil {
			t.Fatal("WithOnlineReplan+WithSupervision must panic")
		}
	}()
	NewJoin(EquiChain(2, 0), []Time{Second, Second}, Options{},
		WithOnlineReplan(ReplanOptions{}), WithSupervision(Supervision{}))
}

// TestAutoPlanFrom: measured statistics flow through the snapshot into the
// planner — a dense measurement keeps the flat shape, a sparse one flips
// the same condition to a tree.
func TestAutoPlanFrom(t *testing.T) {
	leakcheck.Check(t)
	w := []Time{600, 600, 600, 600}
	run := func(domain int) StatsSnapshot {
		in := gen.PhaseFlipStar4(1, 800, 5, domain, domain, 100)
		maxD, _ := in.MaxDelay()
		j := NewJoin(replanStarCond(), w, Options{Policy: StaticSlack, StaticK: maxD})
		for _, e := range in {
			j.Push(e)
		}
		j.Close()
		return j.Snapshot()
	}
	dense := AutoPlanFrom(replanStarCond(), w, PlanHints{}, run(12))
	if s := dense.Explain(); !strings.Contains(s, "flat") {
		t.Fatalf("dense measurement must keep the flat operator, got:\n%s", s)
	}
	sparse := AutoPlanFrom(replanStarCond(), w, PlanHints{}, run(600))
	if s := sparse.Explain(); strings.Contains(s, "flat") {
		t.Fatalf("sparse measurement must flip to a tree, got:\n%s", s)
	}
}
