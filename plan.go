package qdhj

// The public face of the deployment planner (internal/plan): one plan
// graph describes how a logical join deploys — the flat MJoin-style
// operator, key-partitioned shards, binary trees (left-deep or bushy), and
// stage-wise sharding compose as nodes of one graph — and every Join
// executes behind the same seam, whichever shape was chosen.

import (
	"fmt"

	"repro/internal/plan"
)

// Plan is one deployment plan: the condition, the windows, and the chosen
// shape. Build one with AutoPlan (cost-model default), ParsePlan (explicit
// spec), and execute it with NewJoin(..., WithPlan(p)).
type Plan struct {
	g *plan.Graph
}

// PlanHints carries the resource and statistics hints the auto-planner's
// cost model consumes. The zero value means "single-threaded, nothing
// known" and always plans the flat operator.
type PlanHints struct {
	// Shards is the parallel worker budget. With a budget, a condition
	// whose key class covers every stream shards the flat operator; a
	// condition without one (the x4 star) deploys as a binary tree with
	// every stage sharded on its own cross key — no broadcast route.
	Shards int
	// Selectivity estimates the fraction of candidate pairs satisfying one
	// join predicate (0 = unknown). Low values make tree shapes with
	// materialized intermediates affordable, the regime where per-stage K
	// pays (DESIGN.md §8/§9).
	Selectivity float64
	// Rates optionally gives per-stream arrival rates in tuples per
	// millisecond; see (*Join).Snapshot().Streams[i].Rate for measuring
	// them on a running join.
	Rates []float64
}

// AutoPlan analyzes the condition and picks the default deployment shape
// for the given hints; see the package documentation of internal/plan for
// the decision procedure. Like compiling the condition into an operator,
// planning seals it against further mutation.
func AutoPlan(cond *Condition, windows []Time, h PlanHints) *Plan {
	return &Plan{g: plan.Auto(cond, windows, plan.Hints{
		Shards:      h.Shards,
		Selectivity: h.Selectivity,
		Rates:       h.Rates,
	})}
}

// AutoPlanFrom is AutoPlan with measured statistics layered over the
// hints: the snapshot's per-stream rates and per-edge selectivities —
// typically a running join's (*Join).Snapshot() — override the hinted
// values where present. This is the offline half of online re-planning:
// measure on a live join, re-plan from the measurement, redeploy; see
// WithOnlineReplan for the fully automatic loop.
func AutoPlanFrom(cond *Condition, windows []Time, h PlanHints, snap StatsSnapshot) *Plan {
	ms := plan.Measured{}
	if len(snap.Streams) == len(windows) {
		ms.Rates = make([]float64, len(snap.Streams))
		for i, s := range snap.Streams {
			ms.Rates[i] = s.Rate
		}
	}
	for _, e := range snap.Edges {
		ms.Edges = append(ms.Edges, plan.EdgeSigma{Left: e.Left, Right: e.Right, Sigma: e.Selectivity})
	}
	return &Plan{g: plan.AutoMeasured(cond, windows, plan.Hints{
		Shards:      h.Shards,
		Selectivity: h.Selectivity,
		Rates:       h.Rates,
	}, &ms)}
}

// ParsePlan compiles a textual plan spec: "auto", "flat", "shard[:N]",
// "tree", "tree-shard[:N]", or an explicit shape s-expression such as
// "((0 1)x4 2)x4" (a xN suffix shards that stage). shards is the budget
// the named forms use when the spec carries no explicit count.
func ParsePlan(spec string, cond *Condition, windows []Time, shards int) (*Plan, error) {
	g, err := plan.ParseSpec(spec, cond, windows, shards)
	if err != nil {
		return nil, err
	}
	return &Plan{g: g}, nil
}

// Explain renders the plan graph: the shape, every shard node's route, and
// the per-stage K decision scopes of tree shapes.
func (p *Plan) Explain() string { return p.g.Explain() }

// Explain renders a plan graph; see (*Plan).Explain.
func Explain(p *Plan) string { return p.Explain() }

// WithPlan deploys the join as the given plan. The plan must have been
// built for the same condition and windows passed to NewJoin.
func WithPlan(p *Plan) JoinOption {
	return func(o *joinOpts) { o.plan = p }
}

// WithAutoPlan lets the planner pick the deployment shape, using the
// WithShards value (if any) as the parallelism budget. Where plain
// WithShards always runs the flat sharded operator — broadcasting when the
// condition has no full key class — WithAutoPlan upgrades such conditions
// to stage-wise sharding.
func WithAutoPlan() JoinOption {
	return func(o *joinOpts) { o.autoPlan = true }
}

// graphFor resolves the deployment graph of one NewJoin call.
func (o *joinOpts) graphFor(cond *Condition, windows []Time) *plan.Graph {
	if len(o.remote) > 0 && o.shards == 0 && o.plan == nil && !o.autoPlan {
		// One worker address per shard: remote workers imply the sharded
		// flat shape at the address count.
		o.shards = len(o.remote)
	}
	switch {
	case o.plan != nil:
		g := o.plan.g
		if g.Cond != cond {
			panic("qdhj: WithPlan plan was built for a different Condition — the compiled routes and scopes would not match; plan the same condition value you pass to NewJoin")
		}
		if len(g.Windows) != len(windows) {
			panic("qdhj: WithPlan plan window count differs from NewJoin's")
		}
		for i := range windows {
			if g.Windows[i] != windows[i] {
				panic(fmt.Sprintf("qdhj: WithPlan plan window %d = %v differs from NewJoin's %v", i, g.Windows[i], windows[i]))
			}
		}
		return g
	case o.autoPlan:
		return plan.Auto(cond, windows, plan.Hints{Shards: o.shards})
	case o.shards > 1:
		return plan.ShardedFlat(cond, windows, o.shards)
	default:
		return plan.FlatGraph(cond, windows)
	}
}
